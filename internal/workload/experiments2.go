package workload

import (
	"fmt"
	"time"

	"ode/internal/compile"
	"ode/internal/engine"
	"ode/internal/evlang"
	"ode/internal/schema"
	"ode/internal/value"
)

// E6Row reports one §7 coupling encoding compiled to an automaton.
type E6Row struct {
	Mode      string
	Event     string
	DFAStates int
	Symbols   int
}

// couplingEncodings are the paper's nine §7 expressions with
// E = "after withdraw(a) && a > 100" and C = "balance < 5000".
func couplingEncodings() [][2]string {
	const (
		e = "after withdraw(a) && a > 100"
		c = "balance < 5000"
	)
	wrap := func(f string, args ...any) string { return fmt.Sprintf(f, args...) }
	ec := "(" + e + ") && " + c
	def := wrap("fa((%s), before tcomplete, after tbegin)", e)
	return [][2]string{
		{"Immediate-Immediate", ec},
		{"Immediate-Deferred", wrap("fa(%s, before tcomplete, after tbegin)", ec)},
		{"Immediate-Dependent", wrap("fa(%s, after tcommit, after tbegin)", ec)},
		{"Immediate-Independent", wrap("fa(%s, after tcommit | after tabort, after tbegin)", ec)},
		{"Deferred-Immediate", wrap("(%s) && %s", def, c)},
		{"Deferred-Dependent", wrap("fa((%s) && %s, after tcommit, after tbegin)", def, c)},
		{"Deferred-Independent", wrap("fa((%s) && %s, after tcommit | after tabort, after tbegin)", def, c)},
		{"Dependent-Immediate", wrap("(fa((%s), after tcommit, after tbegin)) && %s", e, c)},
		{"Independent-Immediate", wrap("(fa((%s), after tcommit | after tabort, after tbegin)) && %s", e, c)},
	}
}

func couplingClass() *schema.Class {
	cls := &schema.Class{
		Name:   "account",
		Fields: []schema.Field{{Name: "balance", Kind: value.KindInt, Default: value.Int(0)}},
		Methods: []schema.Method{
			{Name: "deposit", Params: []schema.Param{{Name: "a", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
			{Name: "withdraw", Params: []schema.Param{{Name: "a", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
		},
	}
	for i, enc := range couplingEncodings() {
		cls.Triggers = append(cls.Triggers, schema.Trigger{
			Name:      fmt.Sprintf("C%d", i),
			Perpetual: true,
			Event:     enc[1],
		})
	}
	return cls
}

// RunE6 compiles the nine coupling encodings over one shared class
// alphabet and reports automaton sizes: the E-A model's "any coupling
// is just an event expression" claim, made concrete.
func RunE6() ([]E6Row, error) {
	cls := couplingClass()
	res, err := evlang.ResolveClass(cls, evlang.ForClass(cls))
	if err != nil {
		return nil, err
	}
	encs := couplingEncodings()
	rows := make([]E6Row, 0, len(encs))
	for i, enc := range encs {
		tr := res.Trigger(fmt.Sprintf("C%d", i))
		d := compile.Compile(tr.Expr, res.Alphabet.NumSymbols)
		rows = append(rows, E6Row{
			Mode:      enc[0],
			Event:     enc[1],
			DFAStates: d.NumStates,
			Symbols:   d.NumSymbols,
		})
	}
	return rows, nil
}

// E7Row reports one simulated time-event schedule.
type E7Row struct {
	Spec     string
	Horizon  string
	Fires    int
	Expected int
}

// RunE7 exercises the three time-event forms on the live engine over a
// simulated 48-hour horizon (footnote 1: timed triggers are composite
// events like any other).
func RunE7() ([]E7Row, error) {
	eng, err := engine.New(engine.Options{Start: time.Date(2026, 7, 6, 8, 0, 0, 0, time.UTC)})
	if err != nil {
		return nil, err
	}
	defer eng.Close()

	counts := map[string]*int{}
	cls := &schema.Class{
		Name:   "monitor",
		Fields: []schema.Field{{Name: "x", Kind: value.KindInt, Default: value.Int(0)}},
		Methods: []schema.Method{
			{Name: "tick", Mode: schema.ModeUpdate},
		},
		Triggers: []schema.Trigger{
			{Name: "AtDaily", Perpetual: true, Event: "at time(HR=17)"},
			{Name: "EveryH", Perpetual: true, Event: "every time(HR=6)"},
			{Name: "AfterOnce", Event: "after time(HR=30)"},
		},
	}
	impl := engine.ClassImpl{
		Methods: map[string]engine.MethodImpl{
			"tick": func(ctx *engine.MethodCtx) (value.Value, error) { return value.Null(), nil },
		},
		Actions: map[string]engine.ActionFunc{},
	}
	for _, tr := range cls.Triggers {
		n := new(int)
		counts[tr.Name] = n
		impl.Actions[tr.Name] = func(*engine.ActionCtx) error { *n++; return nil }
	}
	if _, err := eng.RegisterClass(cls, impl, nil); err != nil {
		return nil, err
	}
	err = eng.Transact(func(tx *engine.Tx) error {
		oid, err := tx.NewObject("monitor", nil)
		if err != nil {
			return err
		}
		for _, tr := range cls.Triggers {
			if err := tx.Activate(oid, tr.Name); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	eng.Clock().Advance(48 * time.Hour)
	if errs := eng.TimerErrors(); len(errs) > 0 {
		return nil, errs[0]
	}
	return []E7Row{
		{Spec: "at time(HR=17), daily", Horizon: "48h", Fires: *counts["AtDaily"], Expected: 2},
		{Spec: "every time(HR=6)", Horizon: "48h", Fires: *counts["EveryH"], Expected: 8},
		{Spec: "after time(HR=30), one-shot", Horizon: "48h", Fires: *counts["AfterOnce"], Expected: 1},
	}, nil
}

// E2Engine measures the live engine's actual per-object memory using
// the automaton metadata of a registered class: the §5 claim "one word
// per active trigger per object" checked against the runtime's own
// structures.
type E2EngineRow struct {
	Objects             int
	TriggersPerObject   int
	StateWordsPerObject int
}

// RunE2Engine activates the coupling-class triggers on n objects and
// confirms each object's activation map holds exactly one state word
// per trigger.
func RunE2Engine(n int) (E2EngineRow, error) {
	eng, err := engine.New(engine.Options{})
	if err != nil {
		return E2EngineRow{}, err
	}
	defer eng.Close()
	cls := couplingClass()
	impl := engine.ClassImpl{
		Methods: map[string]engine.MethodImpl{
			"deposit":  func(*engine.MethodCtx) (value.Value, error) { return value.Null(), nil },
			"withdraw": func(*engine.MethodCtx) (value.Value, error) { return value.Null(), nil },
		},
		Actions: map[string]engine.ActionFunc{},
	}
	for _, tr := range cls.Triggers {
		impl.Actions[tr.Name] = func(*engine.ActionCtx) error { return nil }
	}
	if _, err := eng.RegisterClass(cls, impl, nil); err != nil {
		return E2EngineRow{}, err
	}
	words := 0
	err = eng.Transact(func(tx *engine.Tx) error {
		for i := 0; i < n; i++ {
			oid, err := tx.NewObject("account", nil)
			if err != nil {
				return err
			}
			for _, tr := range cls.Triggers {
				if err := tx.Activate(oid, tr.Name); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return E2EngineRow{}, err
	}
	for _, oid := range eng.Store().OIDs() {
		rec, err := eng.Store().Get(oid)
		if err != nil {
			return E2EngineRow{}, err
		}
		words += len(rec.Triggers)
	}
	return E2EngineRow{
		Objects:             n,
		TriggersPerObject:   len(cls.Triggers),
		StateWordsPerObject: words / n,
	}, nil
}
