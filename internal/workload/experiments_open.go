package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ode/internal/engine"
	"ode/internal/obs"
	"ode/internal/schema"
	"ode/internal/store"
	"ode/internal/value"
)

// E15Row is one open-loop measurement: transactions arrive on a fixed
// schedule at TargetRate regardless of how fast the engine drains
// them, and each latency is measured from the transaction's *intended*
// start — the schedule slot — not from when a worker got around to
// issuing it. A closed loop (issue, wait, issue) silently pauses the
// arrival process whenever the system stalls, so the stall's queueing
// delay never appears in the numbers (coordinated omission); anchoring
// at intended start makes stalls show up as the tail latency a real
// open-world client would see.
type E15Row struct {
	TargetRate float64 `json:"target_rate_per_sec"`
	Workers    int     `json:"workers"`
	Txs        int     `json:"txs"`
	// AchievedRate is completions over the wall-clock window; it sags
	// below TargetRate when the engine cannot keep up.
	AchievedRate float64 `json:"achieved_rate_per_sec"`
	Firings      uint64  `json:"firings"`
	// Latency quantiles (intended-start to completion), from the same
	// power-of-two histogram the per-trigger metrics use.
	P50Ns  uint64  `json:"p50_ns"`
	P90Ns  uint64  `json:"p90_ns"`
	P99Ns  uint64  `json:"p99_ns"`
	P999Ns uint64  `json:"p999_ns"`
	MaxNs  uint64  `json:"max_ns"`
	MeanNs float64 `json:"mean_ns"`
	// Late counts transactions that started behind schedule (their slot
	// had already passed when a worker picked them up) — the open-loop
	// backlog signal.
	Late int `json:"late"`
}

// RunE15 drives the E11 banking mix open-loop at each target arrival
// rate: a fixed schedule of txs transactions is computed up front
// (slot i at start + i/rate), workers pull the next unclaimed slot,
// sleep until its intended time, run the transaction, and observe
// completion − intended start. Workers are sized generously relative
// to the rate so the arrival process never blocks on a busy worker —
// the open-loop property the measurement depends on.
func RunE15(txs, objects, workers int, seed int64, rates []float64) ([]E15Row, error) {
	rows := make([]E15Row, 0, len(rates))
	for _, rate := range rates {
		r, err := runE15Once(txs, objects, workers, seed, rate)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

func runE15Once(txs, objects, workers int, seed int64, rate float64) (E15Row, error) {
	if rate <= 0 {
		return E15Row{}, fmt.Errorf("workload: E15 rate must be positive, got %g", rate)
	}
	if workers <= 0 {
		workers = 8
	}
	eng, err := engine.New(engine.Options{})
	if err != nil {
		return E15Row{}, err
	}
	defer eng.Close()

	oids, err := setupBanking(eng, objects)
	if err != nil {
		return E15Row{}, err
	}

	// Warm-up: lazy allocations and first-touch faults happen before
	// the measured window.
	err = eng.Transact(func(tx *engine.Tx) error {
		for j := 0; j < 64; j++ {
			if _, err := tx.Call(oids[j%len(oids)], "deposit", value.Int(1)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return E15Row{}, err
	}

	// The fixed arrival schedule: slot i fires at start + i*interval.
	// It exists before any work runs, so a slow transaction delays its
	// successors' *execution*, never their intended times.
	interval := time.Duration(float64(time.Second) / rate)
	var hist obs.Histogram
	var next atomic.Int64
	var late atomic.Int64
	errs := make([]error, workers)

	start := time.Now().Add(5 * time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for {
				i := next.Add(1) - 1
				if i >= int64(txs) {
					return
				}
				intended := start.Add(time.Duration(i) * interval)
				if d := time.Until(intended); d > 0 {
					time.Sleep(d)
				} else {
					late.Add(1)
				}
				// Unlike E11's disjoint partitions, open-loop workers share
				// the whole object pool; touching objects in ascending
				// order keeps lock acquisition globally consistent so
				// concurrent transactions cannot deadlock.
				picks := [4]int{rng.Intn(len(oids)), rng.Intn(len(oids)), rng.Intn(len(oids)), rng.Intn(len(oids))}
				sort.Ints(picks[:])
				err := eng.Transact(func(tx *engine.Tx) error {
					for _, p := range picks {
						amount := value.Int(int64(rng.Intn(300)))
						method := "deposit"
						if rng.Intn(2) == 0 {
							method = "withdraw"
						}
						if _, err := tx.Call(oids[p], method, amount); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					errs[w] = err
					return
				}
				// Coordinated-omission-safe: latency anchors at the
				// schedule slot, so time spent queued behind a stall is
				// charged to this transaction.
				hist.Observe(time.Since(intended))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return E15Row{}, err
		}
	}

	stats := eng.Stats()
	snap := hist.Snapshot()
	if snap.Count != uint64(txs) {
		return E15Row{}, fmt.Errorf("workload: E15 observed %d latencies, want %d", snap.Count, txs)
	}
	return E15Row{
		TargetRate:   rate,
		Workers:      workers,
		Txs:          txs,
		AchievedRate: float64(txs) / elapsed.Seconds(),
		Firings:      stats.Firings,
		P50Ns:        snap.Quantile(0.50),
		P90Ns:        snap.Quantile(0.90),
		P99Ns:        snap.Quantile(0.99),
		P999Ns:       snap.Quantile(0.999),
		MaxNs:        snap.MaxNs,
		MeanNs:       snap.MeanNs,
		Late:         int(late.Load()),
	}, nil
}

// bankingClass is the shared E11/E15 benchmark class: two update
// methods and three triggers (a masked one, a composite, an unmasked
// perpetual) with no-op actions.
func bankingClass() (*schema.Class, engine.ClassImpl) {
	cls := &schema.Class{
		Name:   "account",
		Fields: []schema.Field{{Name: "balance", Kind: value.KindInt, Default: value.Int(1000)}},
		Methods: []schema.Method{
			{Name: "deposit", Params: []schema.Param{{Name: "a", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
			{Name: "withdraw", Params: []schema.Param{{Name: "a", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
		},
		Triggers: []schema.Trigger{
			{Name: "Large", Perpetual: true, Event: "after withdraw(a) && a > 100"},
			{Name: "Pair", Perpetual: true, Event: "prior(after deposit, after withdraw)"},
			{Name: "AnyDep", Perpetual: true, Event: "after deposit"},
		},
	}
	impl := engine.ClassImpl{
		Methods: map[string]engine.MethodImpl{
			"deposit": func(ctx *engine.MethodCtx) (value.Value, error) {
				b, _ := ctx.Get("balance")
				return value.Null(), ctx.Set("balance", value.Int(b.AsInt()+ctx.Arg("a").AsInt()))
			},
			"withdraw": func(ctx *engine.MethodCtx) (value.Value, error) {
				b, _ := ctx.Get("balance")
				return value.Null(), ctx.Set("balance", value.Int(b.AsInt()-ctx.Arg("a").AsInt()))
			},
		},
		Actions: map[string]engine.ActionFunc{
			"Large":  func(*engine.ActionCtx) error { return nil },
			"Pair":   func(*engine.ActionCtx) error { return nil },
			"AnyDep": func(*engine.ActionCtx) error { return nil },
		},
	}
	return cls, impl
}

// setupBanking registers the E11 banking class and creates objects
// accounts with every trigger active.
func setupBanking(eng *engine.Engine, objects int) ([]store.OID, error) {
	cls, impl := bankingClass()
	if _, err := eng.RegisterClass(cls, impl, nil); err != nil {
		return nil, err
	}
	oids := make([]store.OID, objects)
	err := eng.Transact(func(tx *engine.Tx) error {
		for i := range oids {
			oid, err := tx.NewObject("account", nil)
			if err != nil {
				return err
			}
			oids[i] = oid
			for _, tr := range cls.Triggers {
				if err := tx.Activate(oid, tr.Name); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return oids, nil
}
