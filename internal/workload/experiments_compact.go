package workload

import (
	"fmt"
	"math/rand"
	"time"

	"ode/internal/compile"
	"ode/internal/engine"
	"ode/internal/schema"
	"ode/internal/value"
)

// E13Result quantifies the compact shared-automaton representation on a
// fleet workload: many classes declaring the same handful of event
// expressions, the regime the hash-cons cache and row-deduplicated
// narrow tables are built for.
type E13Result struct {
	Triggers      int     `json:"triggers"`
	DistinctExprs int     `json:"distinct_exprs"`
	Tables        uint64  `json:"resident_tables"`
	FatBytes      uint64  `json:"fat_table_bytes"`
	CompactBytes  uint64  `json:"compact_table_bytes"`
	Reduction     float64 `json:"reduction_factor"`
	CacheHits     uint64  `json:"compile_cache_hits"`
	CacheMisses   uint64  `json:"compile_cache_misses"`
	HitRate       float64 `json:"compile_cache_hit_rate"`
	// Per-transition stepping cost of the compact form (through the
	// class-symbol remap) vs the fat oracle table, measured on the same
	// random symbol sequence.
	CompactNsPerStep float64 `json:"compact_ns_per_step"`
	OracleNsPerStep  float64 `json:"oracle_ns_per_step"`
}

// e13Exprs are the distinct event expressions the fleet shares. Every
// class declares all of them, so triggers/len(e13Exprs) classes share
// each resident table.
var e13Exprs = []string{
	"after deposit",
	"after withdraw",
	"after deposit; before withdraw",
	"after deposit | after withdraw",
	"after deposit & after withdraw",
	"!after deposit",
	"choose 3 (after deposit)",
	"every 4 (after withdraw)",
	"relative(after deposit, after withdraw)",
	"after withdraw; after withdraw",
}

// RunE13 registers classes×len(e13Exprs) triggers (classes distinct,
// expressions repeated) and reports the resident transition-table
// footprint against the unshared states×symbols×8 baseline, the
// compile-cache hit rate, and raw stepping cost compact vs oracle.
func RunE13(classes int, seed int64) (E13Result, error) {
	// Reset the process-wide cache so hit/miss accounting reflects this
	// workload alone (tables themselves are immutable; resetting is an
	// accounting matter).
	compile.ResetAutomatonCache()

	eng, err := engine.New(engine.Options{})
	if err != nil {
		return E13Result{}, err
	}
	defer eng.Close()

	var classNames []string
	for c := 0; c < classes; c++ {
		name := fmt.Sprintf("acct%d", c)
		classNames = append(classNames, name)
		var triggers []schema.Trigger
		for i, ev := range e13Exprs {
			triggers = append(triggers, schema.Trigger{
				Name:      fmt.Sprintf("T%d", i),
				Perpetual: true,
				Event:     ev,
			})
		}
		cls := &schema.Class{
			Name:   name,
			Fields: []schema.Field{{Name: "balance", Kind: value.KindInt, Default: value.Int(0)}},
			Methods: []schema.Method{
				{Name: "deposit", Params: []schema.Param{{Name: "n", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
				{Name: "withdraw", Params: []schema.Param{{Name: "a", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
			},
			Triggers: triggers,
		}
		impl := engine.ClassImpl{
			Methods: map[string]engine.MethodImpl{
				"deposit":  func(ctx *engine.MethodCtx) (value.Value, error) { return value.Null(), nil },
				"withdraw": func(ctx *engine.MethodCtx) (value.Value, error) { return value.Null(), nil },
			},
			Actions: map[string]engine.ActionFunc{},
		}
		for _, tr := range triggers {
			impl.Actions[tr.Name] = func(*engine.ActionCtx) error { return nil }
		}
		if _, err := eng.RegisterClass(cls, impl, nil); err != nil {
			return E13Result{}, err
		}
	}

	st := eng.Stats()
	res := E13Result{
		DistinctExprs: len(e13Exprs),
		Tables:        st.AutomatonTables,
		CompactBytes:  st.AutomatonTableBytes,
		CacheHits:     st.CompileCacheHits,
		CacheMisses:   st.CompileCacheMisses,
	}
	if total := res.CacheHits + res.CacheMisses; total > 0 {
		res.HitRate = float64(res.CacheHits) / float64(total)
	}

	// The fat baseline: what §5 tables cost if every trigger owned a
	// private states×symbols×8 array over its class alphabet.
	for _, name := range classNames {
		c := eng.Class(name)
		for _, t := range c.Triggers {
			res.Triggers++
			oracle := t.Oracle()
			res.FatBytes += uint64(oracle.NumStates * oracle.NumSymbols * 8)
		}
	}
	if res.CompactBytes > 0 {
		res.Reduction = float64(res.FatBytes) / float64(res.CompactBytes)
	}

	// Raw stepping: the same random symbol sequence through the compact
	// remapped form and the expanded fat oracle. Use the richest
	// expression so the automaton is not a trivial two-state loop.
	t0 := eng.Class(classNames[0]).Triggers[8] // relative(after deposit, after withdraw)
	shared := t0.Auto
	oracle := t0.Oracle()
	rng := rand.New(rand.NewSource(seed))
	word := make([]int, 1<<16)
	for i := range word {
		word[i] = rng.Intn(oracle.NumSymbols)
	}
	res.CompactNsPerStep = e13Time(len(word), func() {
		s := shared.Start()
		for _, a := range word {
			s = shared.Next(s, a)
		}
		e13Sink = s
	})
	res.OracleNsPerStep = e13Time(len(word), func() {
		s := oracle.Start
		for _, a := range word {
			s = oracle.Next(s, a)
		}
		e13Sink = s
	})
	return res, nil
}

// e13Sink defeats dead-code elimination of the timed loops.
var e13Sink int

// e13Time returns the best-of-three per-iteration nanoseconds of fn,
// which performs iters units of work per call.
func e13Time(iters int, fn func()) float64 {
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		fn()
		ns := float64(time.Since(start).Nanoseconds()) / float64(iters)
		if rep == 0 || ns < best {
			best = ns
		}
	}
	return best
}
