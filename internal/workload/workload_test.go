package workload

import (
	"math/rand"
	"testing"

	"ode/internal/algebra"
	"ode/internal/compile"
)

func TestPaperExprsCompileAndAgreeWithOracle(t *testing.T) {
	paper := Paper()
	if len(paper.Exprs) != len(paper.Names) {
		t.Fatal("names/exprs mismatch")
	}
	rng := rand.New(rand.NewSource(3))
	for i, e := range paper.Exprs {
		d := compile.Compile(e, NumPaperSymbols)
		for iter := 0; iter < 20; iter++ {
			h := RandomHistory(rng, NumPaperSymbols, 1+rng.Intn(12))
			want := algebra.Eval(e, h)
			det := compile.NewDetector(d)
			for p, sym := range h {
				if got := det.Post(sym); got != want[p] {
					t.Fatalf("%s: point %d of %v", paper.Names[i], p, h)
				}
			}
		}
	}
}

func TestRandomExprDeterministic(t *testing.T) {
	a := RandomExpr(rand.New(rand.NewSource(9)), 3, 3)
	b := RandomExpr(rand.New(rand.NewSource(9)), 3, 3)
	if a.String() != b.String() {
		t.Fatal("generator not deterministic for equal seeds")
	}
}

func TestRunE1ShapesAndSpeedup(t *testing.T) {
	rows := RunE1([]int{64, 256}, 1)
	if len(rows) != 2*len(Paper().Exprs) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AutomatonNsPerEvent <= 0 || r.NaiveNsPerEvent <= 0 {
			t.Fatalf("non-positive timing: %+v", r)
		}
	}
}

func TestRunE2Constant(t *testing.T) {
	rows := RunE2([]int{10, 1000}, 8)
	if rows[0].AutomatonBytesPerObject != rows[1].AutomatonBytesPerObject {
		t.Fatal("automaton storage must not grow with history")
	}
	if rows[0].AutomatonBytesPerObject != 64 {
		t.Fatalf("bytes/object = %d, want 8×8", rows[0].AutomatonBytesPerObject)
	}
	if rows[1].HistoryBytesPerObject <= rows[0].HistoryBytesPerObject {
		t.Fatal("history storage must grow")
	}
}

func TestRunE3Sizes(t *testing.T) {
	rows := RunE3()
	for _, r := range rows {
		if r.DFAStates < 1 || r.Symbols != NumPaperSymbols {
			t.Fatalf("row %+v", r)
		}
		if r.TableBytes != r.DFAStates*r.Symbols*8 {
			t.Fatalf("table bytes inconsistent: %+v", r)
		}
	}
}

func TestRunE4Doubling(t *testing.T) {
	rows, err := RunE4(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		k := i + 1
		// Alphabet = fixed kinds (12: create, delete, 2×f, 5 txn, plus
		// the masked block's extra symbols): block is 2^k, so total is
		// (kinds-1) + 2^k.
		if r.Symbols != 8+(1<<k) {
			t.Fatalf("k=%d symbols=%d want %d", k, r.Symbols, 8+(1<<k))
		}
		if r.DFAStates < 2 {
			t.Fatalf("k=%d states=%d", k, r.DFAStates)
		}
	}
}

func TestRunE5Bound(t *testing.T) {
	for _, r := range RunE5() {
		if r.APrimStates > r.Bound+1 {
			t.Fatalf("pair construction exceeded bound: %+v", r)
		}
	}
}

func TestRunE8(t *testing.T) {
	row := RunE8(5000, 7)
	if row.Triggers != len(Paper().Exprs) || row.CombinedStates < 2 {
		t.Fatalf("row %+v", row)
	}
	if row.SeparateNsPerEvent <= 0 || row.CombinedNsPerEvent <= 0 {
		t.Fatalf("timings %+v", row)
	}
}

func TestRunE9AblationSameSizes(t *testing.T) {
	rows := RunE9()
	if len(rows) != len(Paper().Exprs) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FinalStates < 1 || r.WithMinUs <= 0 || r.WithoutMinUs <= 0 {
			t.Fatalf("row %+v", r)
		}
	}
}
