package workload

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"ode/internal/engine"
	"ode/internal/value"
)

// E11Row is one parallel-posting measurement: the banking workload of
// E10 driven by Goroutines concurrent transactions over disjoint
// object partitions.
type E11Row struct {
	Goroutines int     `json:"goroutines"`
	Persistent bool    `json:"persistent"`
	Calls      int     `json:"calls"`
	Firings    uint64  `json:"firings"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	Speedup    float64 `json:"speedup_vs_1"`
}

// RunE11 measures engine posting throughput at each goroutine count in
// gs: every goroutine owns a disjoint partition of objects and runs
// txsPerG transactions of 4 method calls each. With persistent set the
// engine commits through the WAL (group commit coalesces the
// concurrent Syncs). After every run the per-trigger metrics are
// reconciled against the engine counters — firings and latency
// histogram counts must equal Stats().Firings exactly — so the
// observability pipeline doubles as the concurrency regression oracle.
func RunE11(txsPerG, objectsPerG int, seed int64, persistent bool, gs []int) ([]E11Row, error) {
	rows := make([]E11Row, 0, len(gs))
	var base float64
	for _, g := range gs {
		r, err := runE11Once(txsPerG, objectsPerG, seed, persistent, g)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = r.OpsPerSec
		}
		r.Speedup = r.OpsPerSec / base
		rows = append(rows, r)
	}
	return rows, nil
}

func runE11Once(txsPerG, objectsPerG int, seed int64, persistent bool, g int) (E11Row, error) {
	var dir string
	if persistent {
		d, err := os.MkdirTemp("", "ode-e11-*")
		if err != nil {
			return E11Row{}, err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	eng, err := engine.New(engine.Options{Dir: dir})
	if err != nil {
		return E11Row{}, err
	}
	defer eng.Close()

	oids, err := setupBanking(eng, g*objectsPerG)
	if err != nil {
		return E11Row{}, err
	}

	// Warm the engine (lazy allocations, first-touch page faults, WAL
	// file growth) so the timed phase compares steady states across
	// goroutine counts.
	err = eng.Transact(func(tx *engine.Tx) error {
		for j := 0; j < 64; j++ {
			if _, err := tx.Call(oids[j%len(oids)], "deposit", value.Int(1)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return E11Row{}, err
	}

	errs := make([]error, g)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			part := oids[w*objectsPerG : (w+1)*objectsPerG]
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for i := 0; i < txsPerG; i++ {
				err := eng.Transact(func(tx *engine.Tx) error {
					for j := 0; j < 4; j++ {
						oid := part[rng.Intn(len(part))]
						amount := value.Int(int64(rng.Intn(300)))
						method := "deposit"
						if rng.Intn(2) == 0 {
							method = "withdraw"
						}
						if _, err := tx.Call(oid, method, amount); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return E11Row{}, err
		}
	}

	stats := eng.Stats()
	snap := eng.Metrics().Snapshot()
	var firings, latCount uint64
	for _, ts := range snap.Triggers {
		firings += ts.Firings
		latCount += ts.Latency.Count
	}
	if firings != stats.Firings || latCount != stats.Firings {
		return E11Row{}, fmt.Errorf(
			"workload: E11 metric invariant broken at %d goroutines: per-trigger firings %d, latency counts %d, stats firings %d",
			g, firings, latCount, stats.Firings)
	}

	calls := g * txsPerG * 4
	return E11Row{
		Goroutines: g,
		Persistent: persistent,
		Calls:      calls,
		Firings:    stats.Firings,
		OpsPerSec:  float64(calls) / elapsed.Seconds(),
	}, nil
}

// E11CPUs reports the parallelism available to the run — recorded next
// to the numbers, since parallel speedup is bounded by it.
func E11CPUs() (gomaxprocs, numCPU int) {
	return runtime.GOMAXPROCS(0), runtime.NumCPU()
}
