package workload

import (
	"fmt"
	"math/rand"
)

// SimMethod describes one method atom available to RandomEventSpec.
type SimMethod struct {
	Name string
	// IntParam, when non-empty, is an integer event parameter the
	// generator may constrain with a disjointness mask ("after m(x) &&
	// x > K").
	IntParam string
}

// simMaskBounds are the constants random masks compare against; a
// spread of magnitudes keeps both verdicts common under typical
// argument distributions.
var simMaskBounds = []int{10, 25, 50, 100, 200, 400}

// RandomEventSpec returns a random event-specification string in the
// paper's §3 language over the given method atoms, suitable for
// schema.Trigger.Event. depth bounds combinator nesting. The
// generated specs deliberately avoid tcomplete/tcommit/tabort atoms
// (a perpetual trigger on a bare "before tcomplete" defeats the §6
// commit fixpoint; the simulation harness covers those kinds with its
// fixed trigger pool instead) and timer atoms (virtual-time specs are
// also exercised by the fixed pool).
//
// Determinism: the output is a pure function of the rng stream, the
// method list and depth — the simulation harness relies on this to
// regenerate identical workloads from a seed.
func RandomEventSpec(rng *rand.Rand, methods []SimMethod, depth int) string {
	atom := func() string {
		switch rng.Intn(6) {
		case 0:
			return "after access"
		case 1:
			return "after tbegin"
		default:
			m := methods[rng.Intn(len(methods))]
			if m.IntParam != "" && rng.Intn(2) == 0 {
				bound := simMaskBounds[rng.Intn(len(simMaskBounds))]
				op := ">"
				if rng.Intn(3) == 0 {
					op = "<"
				}
				return fmt.Sprintf("after %s(%s) && %s %s %d", m.Name, m.IntParam, m.IntParam, op, bound)
			}
			return "after " + m.Name
		}
	}
	if depth <= 0 || rng.Intn(3) == 0 {
		return atom()
	}
	sub := func() string { return RandomEventSpec(rng, methods, depth-1) }
	switch rng.Intn(11) {
	case 0:
		return fmt.Sprintf("(%s | %s)", sub(), sub())
	case 1:
		return fmt.Sprintf("(%s & %s)", sub(), sub())
	case 2:
		return fmt.Sprintf("!(%s)", sub())
	case 3:
		return fmt.Sprintf("relative(%s, %s)", sub(), sub())
	case 4:
		return fmt.Sprintf("prior(%s, %s)", sub(), sub())
	case 5:
		return fmt.Sprintf("sequence(%s, %s)", sub(), sub())
	case 6:
		return fmt.Sprintf("choose %d (%s)", 1+rng.Intn(4), sub())
	case 7:
		return fmt.Sprintf("every %d (%s)", 1+rng.Intn(4), sub())
	case 8:
		return fmt.Sprintf("fa(%s, %s, %s)", sub(), sub(), sub())
	case 9:
		return fmt.Sprintf("relative+(%s)", sub())
	default:
		return fmt.Sprintf("relative %d (%s)", 1+rng.Intn(3), sub())
	}
}
