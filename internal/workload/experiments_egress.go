package workload

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"ode/internal/egress"
	"ode/internal/engine"
	"ode/internal/schema"
	"ode/internal/store"
	"ode/internal/value"
)

// E19 — egress overhead and delivery throughput. Three questions:
//
//  1. does commit-time firing capture cost the E12 single-post hot
//     path anything (masked non-firing must stay zero-alloc, firing
//     pays only the capture append)?
//  2. does it cost the E16 batch-posting path anything?
//  3. how fast does the cursor-backed deliverer drain a feed, with and
//     without durable cursor persistence?
//
// Rows come in on/off pairs per scenario so the overhead is read
// directly; the "off" engine runs with Options.DisableEgress.

// E19HotRow is one E12-style hot-path measurement with egress on or
// off.
type E19HotRow struct {
	Scenario    string  `json:"scenario"`
	Egress      string  `json:"egress"` // "on" or "off"
	Calls       int     `json:"calls"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Firings     uint64  `json:"firings"`
	// OverheadPct is (on-off)/off in percent, carried on the "on" row.
	OverheadPct float64 `json:"overhead_pct"`
}

// E19BatchRow is one E16-style batch measurement with egress on or
// off.
type E19BatchRow struct {
	Scenario    string  `json:"scenario"`
	BatchSize   int     `json:"batch_size"`
	Egress      string  `json:"egress"`
	Happenings  int     `json:"happenings"`
	NsPerH      float64 `json:"ns_per_happening"`
	AllocsPerH  float64 `json:"allocs_per_happening"`
	OverheadPct float64 `json:"overhead_pct"`
}

// E19DeliveryRow is one deliverer drain: a committed feed pumped
// through a no-op sender, with or without a durable cursor.
type E19DeliveryRow struct {
	Mode          string  `json:"mode"` // "memory-cursor" or "durable-cursor"
	Records       int     `json:"records"`
	NsPerRecord   float64 `json:"ns_per_record"`
	RecordsPerSec float64 `json:"records_per_sec"`
	CursorSaves   uint64  `json:"cursor_saves"`
}

// E19Result aggregates the experiment.
type E19Result struct {
	Hot      []E19HotRow      `json:"hot_path"`
	Batch    []E19BatchRow    `json:"batch"`
	Delivery []E19DeliveryRow `json:"delivery"`
}

// e19Class is the shared bank class with one trigger.
func e19Class(tr schema.Trigger) (*schema.Class, engine.ClassImpl) {
	cls := &schema.Class{
		Name:   "account",
		Fields: []schema.Field{{Name: "balance", Kind: value.KindInt, Default: value.Int(1000)}},
		Methods: []schema.Method{
			{Name: "deposit", Params: []schema.Param{{Name: "n", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
		},
		Triggers: []schema.Trigger{tr},
	}
	impl := engine.ClassImpl{
		Methods: map[string]engine.MethodImpl{
			"deposit": func(ctx *engine.MethodCtx) (value.Value, error) {
				b, _ := ctx.Get("balance")
				return value.Null(), ctx.Set("balance", value.Int(b.AsInt()+ctx.Arg("n").AsInt()))
			},
		},
		Actions: map[string]engine.ActionFunc{
			tr.Name: func(*engine.ActionCtx) error { return nil },
		},
	}
	return cls, impl
}

// RunE19 measures egress overhead on the E12 and E16 paths and the
// deliverer's drain throughput. calls sizes the single-post loops,
// happenings the batch loops (batch size from batchSizes), deliverRecs
// the delivery drain.
func RunE19(calls, happenings int, batchSizes []int, deliverRecs int) (E19Result, error) {
	var res E19Result
	// Same masked non-firing / firing scenario pair E16 uses.
	for _, sc := range e16Scenarios() {
		var off E19HotRow
		for _, disabled := range []bool{true, false} {
			r, err := e19HotMeasure(sc, disabled, calls)
			if err != nil {
				return res, err
			}
			if disabled {
				off = r
			} else if off.NsPerOp > 0 {
				r.OverheadPct = (r.NsPerOp - off.NsPerOp) / off.NsPerOp * 100
			}
			res.Hot = append(res.Hot, r)
		}
	}
	for _, sc := range e16Scenarios() {
		for _, bs := range batchSizes {
			var off E19BatchRow
			for _, disabled := range []bool{true, false} {
				r, err := e19BatchMeasure(sc, disabled, bs, happenings)
				if err != nil {
					return res, err
				}
				if disabled {
					off = r
				} else if off.NsPerH > 0 {
					r.OverheadPct = (r.NsPerH - off.NsPerH) / off.NsPerH * 100
				}
				res.Batch = append(res.Batch, r)
			}
		}
	}
	for _, durable := range []bool{false, true} {
		r, err := e19DeliveryMeasure(deliverRecs, durable)
		if err != nil {
			return res, err
		}
		res.Delivery = append(res.Delivery, r)
	}
	return res, nil
}

// e19HotMeasure is e12Measure with the egress toggle: one long-lived
// transaction posting single calls.
func e19HotMeasure(sc e16Scenario, disabled bool, calls int) (E19HotRow, error) {
	eng, err := engine.New(engine.Options{DisableEgress: disabled})
	if err != nil {
		return E19HotRow{}, err
	}
	defer eng.Close()
	cls, impl := e19Class(sc.trigger)
	if _, err := eng.RegisterClass(cls, impl, nil); err != nil {
		return E19HotRow{}, err
	}
	var oid store.OID
	err = eng.Transact(func(tx *engine.Tx) error {
		var err error
		if oid, err = tx.NewObject("account", nil); err != nil {
			return err
		}
		return tx.Activate(oid, sc.trigger.Name)
	})
	if err != nil {
		return E19HotRow{}, err
	}

	tx := eng.Begin()
	defer tx.Abort()
	arg := value.Int(sc.arg)
	for i := 0; i < 128; i++ {
		if _, err := tx.Call(oid, sc.method, arg); err != nil {
			return E19HotRow{}, err
		}
	}
	bestNs, bestAllocs := 0.0, 0.0
	var before, after runtime.MemStats
	for rep := 0; rep < 3; rep++ {
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < calls; i++ {
			if _, err := tx.Call(oid, sc.method, arg); err != nil {
				return E19HotRow{}, err
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		ns := float64(elapsed.Nanoseconds()) / float64(calls)
		allocs := float64(after.Mallocs-before.Mallocs) / float64(calls)
		if rep == 0 || ns < bestNs {
			bestNs = ns
		}
		if rep == 0 || allocs < bestAllocs {
			bestAllocs = allocs
		}
	}
	mode := "on"
	if disabled {
		mode = "off"
	}
	return E19HotRow{
		Scenario:    sc.name,
		Egress:      mode,
		Calls:       calls,
		NsPerOp:     bestNs,
		AllocsPerOp: bestAllocs,
		Firings:     eng.Stats().Firings,
	}, nil
}

// e19BatchMeasure is e16Measure with the egress toggle: PostBatch at
// one batch size.
func e19BatchMeasure(sc e16Scenario, disabled bool, batchSize, happenings int) (E19BatchRow, error) {
	eng, err := engine.New(engine.Options{DisableEgress: disabled})
	if err != nil {
		return E19BatchRow{}, err
	}
	defer eng.Close()
	cls, impl := e19Class(sc.trigger)
	if _, err := eng.RegisterClass(cls, impl, nil); err != nil {
		return E19BatchRow{}, err
	}
	var oid store.OID
	err = eng.Transact(func(tx *engine.Tx) error {
		var err error
		if oid, err = tx.NewObject("account", nil); err != nil {
			return err
		}
		return tx.Activate(oid, sc.trigger.Name)
	})
	if err != nil {
		return E19BatchRow{}, err
	}

	tx := eng.Begin()
	defer tx.Abort()
	arg := value.Int(sc.arg)
	b := engine.NewBatch("account", batchSize)
	for i := 0; i < batchSize; i++ {
		b.Call(oid, sc.method, arg)
	}
	iters := happenings / batchSize
	for i := 0; i < 8; i++ {
		if err := tx.PostBatch(b); err != nil {
			return E19BatchRow{}, err
		}
	}
	bestNs, bestAllocs := 0.0, 0.0
	var before, after runtime.MemStats
	for rep := 0; rep < 3; rep++ {
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := tx.PostBatch(b); err != nil {
				return E19BatchRow{}, err
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		ns := float64(elapsed.Nanoseconds()) / float64(iters*batchSize)
		allocs := float64(after.Mallocs-before.Mallocs) / float64(iters*batchSize)
		if rep == 0 || ns < bestNs {
			bestNs = ns
		}
		if rep == 0 || allocs < bestAllocs {
			bestAllocs = allocs
		}
	}
	mode := "on"
	if disabled {
		mode = "off"
	}
	return E19BatchRow{
		Scenario:   sc.name,
		BatchSize:  batchSize,
		Egress:     mode,
		Happenings: iters * batchSize,
		NsPerH:     bestNs,
		AllocsPerH: bestAllocs,
	}, nil
}

// e19DeliveryMeasure commits a feed of `records` firings and drains it
// through a no-op sender, timing the pump.
func e19DeliveryMeasure(records int, durable bool) (E19DeliveryRow, error) {
	eng, err := engine.New(engine.Options{})
	if err != nil {
		return E19DeliveryRow{}, err
	}
	defer eng.Close()
	cls, impl := e19Class(schema.Trigger{Name: "Any", Perpetual: true, Event: "after deposit(n) && n >= 0"})
	if _, err := eng.RegisterClass(cls, impl, nil); err != nil {
		return E19DeliveryRow{}, err
	}
	var oid store.OID
	err = eng.Transact(func(tx *engine.Tx) error {
		var err error
		if oid, err = tx.NewObject("account", nil); err != nil {
			return err
		}
		return tx.Activate(oid, "Any")
	})
	if err != nil {
		return E19DeliveryRow{}, err
	}
	// Commit the feed in transactions of 100 firings each.
	const per = 100
	arg := value.Int(1)
	for done := 0; done < records; done += per {
		n := per
		if records-done < n {
			n = records - done
		}
		err := eng.Transact(func(tx *engine.Tx) error {
			for i := 0; i < n; i++ {
				if _, err := tx.Call(oid, "deposit", arg); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return E19DeliveryRow{}, err
		}
	}

	var cur *egress.Cursor
	mode := "memory-cursor"
	if durable {
		dir, err := os.MkdirTemp("", "ode-e19-*")
		if err != nil {
			return E19DeliveryRow{}, err
		}
		defer os.RemoveAll(dir)
		cur, err = egress.OpenCursor(filepath.Join(dir, "cursor"), nil)
		if err != nil {
			return E19DeliveryRow{}, err
		}
		defer cur.Close()
		mode = "durable-cursor"
	}
	d := egress.NewDeliverer(eng, egress.SenderFunc(func(store.FiringRecord, string) error { return nil }),
		egress.DelivererOptions{Cursor: cur})
	start := time.Now()
	n, err := d.Pump(0)
	elapsed := time.Since(start)
	if err != nil {
		return E19DeliveryRow{}, err
	}
	if n != records {
		return E19DeliveryRow{}, fmt.Errorf("e19: drained %d of %d records", n, records)
	}
	if lag := d.Stats().Lag; lag != 0 {
		return E19DeliveryRow{}, fmt.Errorf("e19: deliverer still lags %d after drain", lag)
	}
	row := E19DeliveryRow{
		Mode:        mode,
		Records:     records,
		NsPerRecord: float64(elapsed.Nanoseconds()) / float64(records),
		CursorSaves: d.Stats().CursorSaves,
	}
	if elapsed > 0 {
		row.RecordsPerSec = float64(records) / elapsed.Seconds()
	}
	return row, nil
}
