package workload

import "testing"

// TestRunE12 exercises the hot-path driver at small scale: every
// scenario appears in both mask modes, the firing scenario actually
// fires, and the masked non-firing scenarios stay silent.
func TestRunE12(t *testing.T) {
	rows, err := RunE12(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6 (3 scenarios x 2 modes)", len(rows))
	}
	modes := map[string]int{}
	for _, r := range rows {
		modes[r.Mode]++
		if r.NsPerOp <= 0 {
			t.Errorf("row %+v: non-positive ns/op", r)
		}
		if r.AllocsPerOp < 0 {
			t.Errorf("row %+v: negative allocs/op", r)
		}
		switch r.Scenario {
		case "firing":
			if r.Firings == 0 {
				t.Errorf("row %+v: firing scenario fired nothing", r)
			}
		default:
			if r.Firings != 0 {
				t.Errorf("row %+v: masked scenario fired %d times", r, r.Firings)
			}
		}
	}
	if modes["compiled"] != 3 || modes["interpreted"] != 3 {
		t.Fatalf("mode coverage wrong: %v", modes)
	}
}
