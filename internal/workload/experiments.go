package workload

import (
	"fmt"
	"math/rand"
	"time"

	"ode/internal/algebra"
	"ode/internal/compile"
	"ode/internal/evlang"
	"ode/internal/fa"
	"ode/internal/schema"
	"ode/internal/value"
)

// E1Row is one row of the detection-cost experiment: the cost of
// recognizing one posted event with the compiled automaton versus
// re-evaluating the §4 denotational semantics over the accumulated
// history (the pre-automaton baseline).
type E1Row struct {
	Expr                string
	HistoryLen          int
	AutomatonNsPerEvent float64
	NaiveNsPerEvent     float64
	Speedup             float64
}

// RunE1 measures detection cost for each paper expression at the given
// history lengths. The naive detector's cost grows with history
// length; the automaton's does not — the paper's efficiency claim.
func RunE1(lengths []int, seed int64) []E1Row {
	paper := Paper()
	rng := rand.New(rand.NewSource(seed))
	var rows []E1Row
	for i, e := range paper.Exprs {
		d := compile.Compile(e, NumPaperSymbols)
		for _, n := range lengths {
			h := RandomHistory(rng, NumPaperSymbols, n)

			det := compile.NewDetector(d)
			start := time.Now()
			for _, sym := range h {
				det.Post(sym)
			}
			autoNs := float64(time.Since(start).Nanoseconds()) / float64(n)

			// The naive baseline re-evaluates on each posting; measure
			// only the final postings to keep runtime bounded, since
			// per-event cost at length n is what the row reports.
			naive := algebra.NewNaiveDetector(e)
			warm := h[:n-min(8, n)]
			for _, sym := range warm {
				naive.Post(sym)
			}
			tail := h[len(warm):]
			start = time.Now()
			for _, sym := range tail {
				naive.Post(sym)
			}
			naiveNs := float64(time.Since(start).Nanoseconds()) / float64(len(tail))

			rows = append(rows, E1Row{
				Expr:                paper.Names[i],
				HistoryLen:          n,
				AutomatonNsPerEvent: autoNs,
				NaiveNsPerEvent:     naiveNs,
				Speedup:             naiveNs / autoNs,
			})
		}
	}
	return rows
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// E2Row is one row of the storage experiment: per-object detection
// state for automaton-based monitoring (one word per active trigger,
// §5) versus retaining the history for re-evaluation.
type E2Row struct {
	HistoryLen              int
	Triggers                int
	AutomatonBytesPerObject int
	HistoryBytesPerObject   int
}

// RunE2 reports per-object storage at increasing history lengths. The
// automaton figure is exact (§5: one integer per active trigger per
// object); the history figure assumes one 16-byte entry per posted
// event.
func RunE2(lengths []int, triggers int) []E2Row {
	rows := make([]E2Row, 0, len(lengths))
	for _, n := range lengths {
		rows = append(rows, E2Row{
			HistoryLen:              n,
			Triggers:                triggers,
			AutomatonBytesPerObject: 8 * triggers,
			HistoryBytesPerObject:   16 * n,
		})
	}
	return rows
}

// E3Row reports one paper trigger's compiled automaton size.
type E3Row struct {
	Expr       string
	ExprNodes  int
	NFAHint    int // states before minimization (post-determinization)
	DFAStates  int
	Symbols    int
	TableBytes int
}

// RunE3 compiles the paper trigger set and reports automaton sizes —
// the concrete face of the §4 regular-language equivalence.
func RunE3() []E3Row {
	paper := Paper()
	rows := make([]E3Row, 0, len(paper.Exprs))
	for i, e := range paper.Exprs {
		d := compile.Compile(e, NumPaperSymbols)
		rows = append(rows, E3Row{
			Expr:       paper.Names[i],
			ExprNodes:  e.Size(),
			DFAStates:  d.NumStates,
			Symbols:    d.NumSymbols,
			TableBytes: d.NumStates * d.NumSymbols * 8,
		})
	}
	return rows
}

// E4Row is one row of the mask-disjointness rewrite study (§5): k
// overlapping masks on one basic event produce a 2^k-symbol block.
type E4Row struct {
	Masks     int
	Symbols   int
	DFAStates int
	ResolveMs float64
}

// RunE4 registers k distinct masks on one method kind and reports the
// alphabet and automaton growth of the union event "any of the masked
// variants".
func RunE4(maxMasks int) ([]E4Row, error) {
	var rows []E4Row
	for k := 1; k <= maxMasks; k++ {
		cls := &schema.Class{
			Name:   "m",
			Fields: []schema.Field{{Name: "x", Kind: value.KindInt}},
			Methods: []schema.Method{{
				Name:   "f",
				Params: []schema.Param{{Name: "q", Kind: value.KindInt}},
				Mode:   schema.ModeUpdate,
			}},
		}
		// k triggers, each masking after f differently; the k-th also
		// unions them all so its automaton spans the whole block.
		for i := 0; i < k; i++ {
			cls.Triggers = append(cls.Triggers, schema.Trigger{
				Name:  fmt.Sprintf("T%d", i),
				Event: fmt.Sprintf("after f(q) && q > %d", i*10),
			})
		}
		union := ""
		for i := 0; i < k; i++ {
			if i > 0 {
				union += " | "
			}
			union += fmt.Sprintf("after f(q) && q > %d", i*10)
		}
		cls.Triggers = append(cls.Triggers, schema.Trigger{Name: "U", Event: union})

		start := time.Now()
		res, err := evlang.ResolveClass(cls, evlang.ForClass(cls))
		if err != nil {
			return nil, err
		}
		u := res.Trigger("U")
		d := compile.Compile(u.Expr, res.Alphabet.NumSymbols)
		rows = append(rows, E4Row{
			Masks:     k,
			Symbols:   res.Alphabet.NumSymbols,
			DFAStates: d.NumStates,
			ResolveMs: float64(time.Since(start).Microseconds()) / 1000.0,
		})
	}
	return rows, nil
}

// E5Row is one row of the §6 pair-construction study.
type E5Row struct {
	Expr        string
	AStates     int
	APrimStates int
	Bound       int // |A|²
}

// RunE5 applies the committed-view→whole-history pair construction to
// the paper expressions and reports state growth against the |A|²
// bound of the §6 Claim. tcommitSym/tabortSym use the PaperExprs
// legend (7 and 8).
func RunE5() []E5Row {
	paper := Paper()
	rows := make([]E5Row, 0, len(paper.Exprs))
	for i, e := range paper.Exprs {
		a := compile.Compile(e, NumPaperSymbols)
		ap := compile.PairConstruction(a, 7, 8)
		rows = append(rows, E5Row{
			Expr:        paper.Names[i],
			AStates:     a.NumStates,
			APrimStates: ap.NumStates,
			Bound:       a.NumStates * a.NumStates,
		})
	}
	return rows
}

// E8Row compares stepping T trigger automata separately against one
// combined product automaton (footnote 5).
type E8Row struct {
	Triggers           int
	CombinedStates     int
	SeparateNsPerEvent float64
	CombinedNsPerEvent float64
}

// RunE8 measures the footnote-5 ablation over the paper trigger set:
// the cost of advancing each automaton per event versus one combined
// transition.
func RunE8(historyLen int, seed int64) E8Row {
	paper := Paper()
	dfas := make([]*fa.DFA, len(paper.Exprs))
	for i, e := range paper.Exprs {
		dfas[i] = compile.Compile(e, NumPaperSymbols)
	}
	comb := compile.Combine(dfas)
	h := RandomHistory(rand.New(rand.NewSource(seed)), NumPaperSymbols, historyLen)

	dets := make([]*compile.Detector, len(dfas))
	for i, d := range dfas {
		dets[i] = compile.NewDetector(d)
	}
	start := time.Now()
	for _, sym := range h {
		for _, det := range dets {
			det.Post(sym)
		}
	}
	sepNs := float64(time.Since(start).Nanoseconds()) / float64(historyLen)

	state := comb.Start
	var sink uint64
	start = time.Now()
	for _, sym := range h {
		var fires uint64
		state, fires = comb.Post(state, sym)
		sink |= fires
	}
	combNs := float64(time.Since(start).Nanoseconds()) / float64(historyLen)
	_ = sink

	return E8Row{
		Triggers:           len(dfas),
		CombinedStates:     comb.NumStates,
		SeparateNsPerEvent: sepNs,
		CombinedNsPerEvent: combNs,
	}
}

// E9Row reports the intermediate-minimization ablation for one paper
// trigger: compile time and result size with and without minimizing at
// every operator node (the final automaton is minimized either way).
type E9Row struct {
	Expr         string
	WithMinUs    float64
	WithoutMinUs float64
	FinalStates  int
}

// RunE9 measures the per-node minimization design choice over the
// paper trigger set.
func RunE9() []E9Row {
	paper := Paper()
	rows := make([]E9Row, 0, len(paper.Exprs))
	for i, e := range paper.Exprs {
		const reps = 20
		start := time.Now()
		var d *fa.DFA
		for r := 0; r < reps; r++ {
			d = compile.Compile(e, NumPaperSymbols)
		}
		with := time.Since(start)
		start = time.Now()
		for r := 0; r < reps; r++ {
			compile.CompileNoIntermediateMin(e, NumPaperSymbols)
		}
		without := time.Since(start)
		rows = append(rows, E9Row{
			Expr:         paper.Names[i],
			WithMinUs:    float64(with.Microseconds()) / reps,
			WithoutMinUs: float64(without.Microseconds()) / reps,
			FinalStates:  d.NumStates,
		})
	}
	return rows
}
