package workload

import (
	"runtime"
	"time"

	"ode/internal/engine"
	"ode/internal/schema"
	"ode/internal/store"
	"ode/internal/value"
)

// E16Row is one batch-posting measurement: the same happening stream
// posted through Tx.PostBatch at a given batch size, or singly through
// Tx.Call (the E12 volatile baseline, batch size 1).
type E16Row struct {
	Scenario      string  `json:"scenario"`
	Mode          string  `json:"mode"` // "single" or "batch"
	BatchSize     int     `json:"batch_size"`
	Happenings    int     `json:"happenings"`
	NsPerH        float64 `json:"ns_per_happening"`
	AllocsPerH    float64 `json:"allocs_per_happening"`
	PerSec        float64 `json:"happenings_per_sec"`
	SpeedupSingle float64 `json:"speedup_vs_single"`
	Firings       uint64  `json:"firings"`
}

// e16Scenario shapes one batch benchmark: the active trigger and the
// method every entry posts.
type e16Scenario struct {
	name    string
	trigger schema.Trigger
	method  string
	arg     int64
}

func e16Scenarios() []e16Scenario {
	return []e16Scenario{
		{
			// The PR's target: masked happenings that never fire. This is
			// the path the 0 amortized allocs/happening budget covers.
			name:    "masked non-firing",
			trigger: schema.Trigger{Name: "Big", Perpetual: true, Event: "after deposit(n) && n > 1000000"},
			method:  "deposit", arg: 1,
		},
		{
			// Every entry fires: the batch loop pays the collect-then-fire
			// bookkeeping and the per-firing params clone.
			name:    "firing",
			trigger: schema.Trigger{Name: "Any", Perpetual: true, Event: "after deposit(n) && n >= 0"},
			method:  "deposit", arg: 1,
		},
	}
}

// RunE16 measures batch posting across a batch-size sweep against the
// single-post baseline, per scenario. Measurements are hand-rolled
// (time + runtime.MemStats mallocs) like RunE12 so the workload
// package does not import testing; TestHotPathAllocBudgetPostBatch
// pins the zero-alloc claim under `go test`.
func RunE16(happenings int, sizes []int) ([]E16Row, error) {
	rows := make([]E16Row, 0, len(e16Scenarios())*(1+len(sizes)))
	for _, sc := range e16Scenarios() {
		single, err := e16Measure(sc, 0, happenings)
		if err != nil {
			return nil, err
		}
		single.SpeedupSingle = 1
		rows = append(rows, single)
		for _, bs := range sizes {
			r, err := e16Measure(sc, bs, happenings)
			if err != nil {
				return nil, err
			}
			if r.NsPerH > 0 {
				r.SpeedupSingle = single.NsPerH / r.NsPerH
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

func e16Measure(sc e16Scenario, batchSize, happenings int) (E16Row, error) {
	eng, err := engine.New(engine.Options{})
	if err != nil {
		return E16Row{}, err
	}
	defer eng.Close()

	cls := &schema.Class{
		Name:   "account",
		Fields: []schema.Field{{Name: "balance", Kind: value.KindInt, Default: value.Int(1000)}},
		Methods: []schema.Method{
			{Name: "deposit", Params: []schema.Param{{Name: "n", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
			{Name: "withdraw", Params: []schema.Param{{Name: "a", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
		},
		Triggers: []schema.Trigger{sc.trigger},
	}
	impl := engine.ClassImpl{
		Methods: map[string]engine.MethodImpl{
			"deposit": func(ctx *engine.MethodCtx) (value.Value, error) {
				b, _ := ctx.Get("balance")
				return value.Null(), ctx.Set("balance", value.Int(b.AsInt()+ctx.Arg("n").AsInt()))
			},
			"withdraw": func(ctx *engine.MethodCtx) (value.Value, error) {
				b, _ := ctx.Get("balance")
				return value.Null(), ctx.Set("balance", value.Int(b.AsInt()-ctx.Arg("a").AsInt()))
			},
		},
		Actions: map[string]engine.ActionFunc{
			sc.trigger.Name: func(*engine.ActionCtx) error { return nil },
		},
	}
	if _, err := eng.RegisterClass(cls, impl, nil); err != nil {
		return E16Row{}, err
	}

	var oid store.OID
	err = eng.Transact(func(tx *engine.Tx) error {
		var err error
		if oid, err = tx.NewObject("account", nil); err != nil {
			return err
		}
		return tx.Activate(oid, sc.trigger.Name)
	})
	if err != nil {
		return E16Row{}, err
	}

	tx := eng.Begin()
	defer tx.Abort()
	arg := value.Int(sc.arg)

	var post func() error
	n := happenings
	if batchSize > 0 {
		b := engine.NewBatch("account", batchSize)
		for i := 0; i < batchSize; i++ {
			b.Call(oid, sc.method, arg)
		}
		post = func() error { return tx.PostBatch(b) }
		// Round to whole batches so per-happening math divides evenly.
		n = (happenings / batchSize) * batchSize
	} else {
		post = func() error {
			_, err := tx.Call(oid, sc.method, arg)
			return err
		}
	}
	iters := n
	per := 1
	if batchSize > 0 {
		iters = n / batchSize
		per = batchSize
	}

	// Warm up: slot binding, plan compilation, arena growth,
	// copy-on-write record clone.
	for i := 0; i < 8; i++ {
		if err := post(); err != nil {
			return E16Row{}, err
		}
	}

	// Best of three timed repetitions, as in RunE12: the first
	// repetition absorbs one-time costs that would skew whichever
	// configuration runs first.
	bestNs := 0.0
	bestAllocs := 0.0
	var before, after runtime.MemStats
	for rep := 0; rep < 3; rep++ {
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := post(); err != nil {
				return E16Row{}, err
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		ns := float64(elapsed.Nanoseconds()) / float64(iters*per)
		allocs := float64(after.Mallocs-before.Mallocs) / float64(iters*per)
		if rep == 0 || ns < bestNs {
			bestNs = ns
		}
		if rep == 0 || allocs < bestAllocs {
			bestAllocs = allocs
		}
	}

	mode := "single"
	bs := 1
	if batchSize > 0 {
		mode = "batch"
		bs = batchSize
	}
	return E16Row{
		Scenario:   sc.name,
		Mode:       mode,
		BatchSize:  bs,
		Happenings: n,
		NsPerH:     bestNs,
		AllocsPerH: bestAllocs,
		PerSec:     1e9 / bestNs,
		Firings:    eng.Stats().Firings,
	}, nil
}
