package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ode/internal/engine"
	"ode/internal/obs"
	"ode/internal/part"
	"ode/internal/store"
	"ode/internal/value"
)

// E17Row is one partitioned-scaling measurement: the E11 volatile
// banking mix driven at a partition count × producer-goroutine count ×
// batch size. Partitions=1 with Batch=1 is the direct unpartitioned
// Transact+Call path — the PR 7 baseline — and every row's speedup is
// relative to that row at the same goroutine count, so the table
// decomposes the partitioned engine's aggregate gain into its two
// sources: columnar batch amortization and lock-free single-writer
// loops.
type E17Row struct {
	Partitions  int     `json:"partitions"`
	Goroutines  int     `json:"goroutines"`
	Batch       int     `json:"batch"`
	Calls       int     `json:"calls"`
	Firings     uint64  `json:"firings"`
	OpsPerSec   float64 `json:"happenings_per_sec"`
	SpeedupVsP1 float64 `json:"speedup_vs_p1_single"`
}

// RunE17 sweeps partitions × goroutines × batch sizes over the E11
// volatile banking workload. Every producer issues callsPerG method
// calls (rounded to whole transactions/batches); after each cell the
// per-trigger metrics — merged across partitions — are reconciled
// against the aggregate engine counters, so the partitioned
// observability plane doubles as the correctness oracle for the cell.
// parts must start with 1 and batches with 1: cell (P=1, B=1) anchors
// the speedup column for its goroutine count.
func RunE17(callsPerG, objectsPerPartition int, seed int64, parts, gs, batches []int) ([]E17Row, error) {
	if len(parts) == 0 || parts[0] != 1 || len(batches) == 0 || batches[0] != 1 {
		return nil, fmt.Errorf("workload: E17 needs parts[0]==1 and batches[0]==1 to anchor speedups")
	}
	var rows []E17Row
	for _, g := range gs {
		var base float64
		for _, p := range parts {
			for _, b := range batches {
				// Best of two repetitions per cell, as in E12/E16: one
				// fresh-engine rep can eat a GC cycle or scheduler hiccup
				// whole at these short runtimes.
				var row E17Row
				for rep := 0; rep < 2; rep++ {
					var (
						r   E17Row
						err error
					)
					if p == 1 {
						r, err = runE17Direct(callsPerG, objectsPerPartition, seed, g, b)
					} else {
						r, err = runE17Partitioned(callsPerG, objectsPerPartition, seed, p, g, b)
					}
					if err != nil {
						return nil, fmt.Errorf("workload: E17 P=%d g=%d batch=%d: %w", p, g, b, err)
					}
					if rep == 0 || r.OpsPerSec > row.OpsPerSec {
						row = r
					}
				}
				if p == 1 && b == 1 {
					base = row.OpsPerSec
				}
				row.SpeedupVsP1 = row.OpsPerSec / base
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// e17Window is how many batches one transaction absorbs on the
// batched paths (the partitioned side's Options.IngestWindow and the
// direct side's explicit commit cadence).
const e17Window = 16

// e17Call draws one call of the E17 mix: the E11 banking class driven
// at a monitoring-shaped distribution — 1/16 deposits (AnyDep and Pair
// fire), the rest withdrawals bounded under Large's mask (a > 100
// never passes). Active-database monitoring posts masses of happenings
// that mostly do NOT fire (§1: triggers watch for rare conditions);
// E11's 50/50 unbounded mix fires on ~90% of calls, which measures the
// firing pipeline (E16's "firing" scenario, ~1.5µs flat regardless of
// path) rather than detection. This mix keeps the hot path on the
// masked automaton-step route the partitioned loops amortize, with
// enough firings to stay non-vacuous.
func e17Call(rng *rand.Rand) (method string, amount value.Value) {
	if rng.Intn(16) == 0 {
		return "deposit", value.Int(int64(rng.Intn(300)))
	}
	return "withdraw", value.Int(int64(rng.Intn(100)))
}

// e17Mix fills batch b with batchSize calls of the E17 mix against oids.
func e17Mix(rng *rand.Rand, b *engine.Batch, oids []store.OID, batchSize int) {
	b.Reset()
	for j := 0; j < batchSize; j++ {
		method, amount := e17Call(rng)
		b.Call(oids[rng.Intn(len(oids))], method, amount)
	}
}

// runE17Direct measures the unpartitioned engine: batch=1 is the
// E11-shaped Transact+Call transaction (4 calls); batch>1 posts
// rebuilt batches through Tx.PostBatch, one transaction per batch.
func runE17Direct(callsPerG, objectsPerG int, seed int64, g, batchSize int) (E17Row, error) {
	eng, err := engine.New(engine.Options{})
	if err != nil {
		return E17Row{}, err
	}
	defer eng.Close()
	oids, err := setupBanking(eng, g*objectsPerG)
	if err != nil {
		return E17Row{}, err
	}
	// Warm up lazy allocations and first-touch growth, as in E11.
	err = eng.Transact(func(tx *engine.Tx) error {
		for j := 0; j < 64; j++ {
			if _, err := tx.Call(oids[j%len(oids)], "deposit", value.Int(1)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return E17Row{}, err
	}

	per := 4
	if batchSize > 1 {
		per = batchSize
	}
	iters := callsPerG / per
	errs := make([]error, g)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := oids[w*objectsPerG : (w+1)*objectsPerG]
			rng := rand.New(rand.NewSource(seed + int64(w)))
			if batchSize > 1 {
				// Symmetric to the partitioned ingest path: one open
				// transaction absorbs e17Window batches before committing,
				// so both sides amortize copy-on-write cloning and commit
				// fan-out identically and the row isolates the routing +
				// loop cost.
				b := engine.NewBatch("account", batchSize)
				var tx *engine.Tx
				for i := 0; i < iters; i++ {
					if tx == nil {
						tx = eng.Begin()
					}
					e17Mix(rng, b, mine, batchSize)
					if err := tx.PostBatch(b); err != nil {
						errs[w] = err
						return
					}
					if (i+1)%e17Window == 0 {
						if err := tx.Commit(); err != nil {
							errs[w] = err
							return
						}
						tx = nil
					}
				}
				if tx != nil {
					if err := tx.Commit(); err != nil {
						errs[w] = err
					}
				}
				return
			}
			for i := 0; i < iters; i++ {
				err := eng.Transact(func(tx *engine.Tx) error {
					for j := 0; j < 4; j++ {
						method, amount := e17Call(rng)
						if _, err := tx.Call(mine[rng.Intn(len(mine))], method, amount); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return E17Row{}, err
		}
	}

	stats := eng.Stats()
	if err := e17Reconcile(eng.Metrics().Snapshot().Triggers, stats.Firings); err != nil {
		return E17Row{}, err
	}
	calls := g * iters * per
	return E17Row{
		Partitions: 1, Goroutines: g, Batch: batchSize,
		Calls: calls, Firings: stats.Firings,
		OpsPerSec: float64(calls) / elapsed.Seconds(),
	}, nil
}

// runE17Partitioned measures the partitioned engine: p single-writer
// loops behind the router. Producers target partitions round-robin;
// batch=1 goes through the routed per-transaction path (DB.Transact on
// the owner), batch>1 builds owner-homogeneous batches and posts them
// through DB.PostBatch — the split layer routes every entry by OID and
// the owning loop consumes the piece lock-free.
func runE17Partitioned(callsPerG, objectsPerPartition int, seed int64, p, g, batchSize int) (E17Row, error) {
	db, err := part.Open(part.Options{N: p, IngestWindow: e17Window})
	if err != nil {
		return E17Row{}, err
	}
	defer db.Close()
	cls, impl := bankingClass()
	err = db.Register(func(_ int, e *engine.Engine) error {
		_, rerr := e.RegisterClass(cls, impl, nil)
		return rerr
	})
	if err != nil {
		return E17Row{}, err
	}
	oids := make([][]store.OID, p)
	for q := 0; q < p; q++ {
		err := db.Transact(q, func(tx *engine.Tx) error {
			for i := 0; i < objectsPerPartition; i++ {
				oid, err := tx.NewObject("account", nil)
				if err != nil {
					return err
				}
				oids[q] = append(oids[q], oid)
				for _, tr := range cls.Triggers {
					if err := tx.Activate(oid, tr.Name); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			return E17Row{}, err
		}
		// Warm each loop and its engine.
		err = db.Transact(q, func(tx *engine.Tx) error {
			for j := 0; j < 16; j++ {
				if _, err := tx.Call(oids[q][j%len(oids[q])], "deposit", value.Int(1)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return E17Row{}, err
		}
	}

	per := 4
	if batchSize > 1 {
		per = batchSize
	}
	iters := callsPerG / per
	errs := make([]error, g)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			var b *engine.Batch
			if batchSize > 1 {
				b = engine.NewBatch("account", batchSize)
			}
			for i := 0; i < iters; i++ {
				q := (w + i) % p
				if batchSize > 1 {
					e17Mix(rng, b, oids[q], batchSize)
					if err := db.PostBatchIngest(b); err != nil {
						errs[w] = err
						return
					}
					continue
				}
				err := db.Transact(q, func(tx *engine.Tx) error {
					for j := 0; j < 4; j++ {
						method, amount := e17Call(rng)
						if _, err := tx.Call(oids[q][rng.Intn(len(oids[q]))], method, amount); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := db.FlushIngest(); err != nil {
		return E17Row{}, err
	}
	db.Drain()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return E17Row{}, err
		}
	}

	stats := db.Stats()
	if err := e17Reconcile(db.Metrics().Triggers, stats.Firings); err != nil {
		return E17Row{}, err
	}
	calls := g * iters * per
	return E17Row{
		Partitions: p, Goroutines: g, Batch: batchSize,
		Calls: calls, Firings: stats.Firings,
		OpsPerSec: float64(calls) / elapsed.Seconds(),
	}, nil
}

// e17Reconcile checks the E11 metric invariant on a (possibly merged)
// per-trigger snapshot: firings and latency-histogram counts must both
// equal the aggregate engine counter exactly.
func e17Reconcile(triggers []obs.TriggerSnapshot, want uint64) error {
	var firings, latCount uint64
	for _, ts := range triggers {
		firings += ts.Firings
		latCount += ts.Latency.Count
	}
	if firings != want || latCount != want {
		return fmt.Errorf("metric invariant broken: per-trigger firings %d, latency counts %d, stats firings %d",
			firings, latCount, want)
	}
	return nil
}
