package workload

import "testing"

// TestRunE17Small runs a reduced partitions × goroutines × batch sweep
// and checks the rows' shape and the anchored speedup column. The full
// scaling claim is measured by `make bench` (BENCH_PR8.json); here the
// cells just have to run, reconcile their merged metrics and anchor
// correctly.
func TestRunE17Small(t *testing.T) {
	rows, err := RunE17(512, 8, 42, []int{1, 2}, []int{1, 2}, []int{1, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Calls == 0 || r.OpsPerSec <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
		if r.Firings == 0 {
			t.Fatalf("banking mix fired nothing: %+v", r)
		}
		if r.Partitions == 1 && r.Batch == 1 && r.SpeedupVsP1 != 1 {
			t.Fatalf("anchor row speedup = %f, want 1: %+v", r.SpeedupVsP1, r)
		}
	}
}

// TestRunE17RejectsUnanchored pins the anchoring contract.
func TestRunE17RejectsUnanchored(t *testing.T) {
	if _, err := RunE17(64, 4, 1, []int{2}, []int{1}, []int{1}); err == nil {
		t.Fatal("parts without leading 1 must be rejected")
	}
	if _, err := RunE17(64, 4, 1, []int{1}, []int{1}, []int{16}); err == nil {
		t.Fatal("batches without leading 1 must be rejected")
	}
}
