package workload

import (
	"fmt"
	"math/rand"

	"ode/internal/engine"
	"ode/internal/obs"
	"ode/internal/schema"
	"ode/internal/store"
	"ode/internal/value"
)

// E10Result is a live-engine observability run: the cumulative engine
// counters plus the per-trigger / per-class metrics snapshot (E10's
// JSON block), with the trace totals that prove the pipeline was
// instrumented end to end.
type E10Result struct {
	Stats         engine.Stats `json:"stats"`
	Metrics       obs.Snapshot `json:"metrics"`
	TraceRetained int          `json:"trace_retained"`
	TraceTotal    uint64       `json:"trace_total"`
}

// RunE10 drives a randomized banking workload against an engine with
// tracing enabled and returns the observability snapshot. It checks the
// core accounting invariant internally: per-trigger firing counts (and
// latency histogram counts) must sum to Stats().Firings.
func RunE10(txs, objects int, seed int64) (E10Result, error) {
	eng, err := engine.New(engine.Options{})
	if err != nil {
		return E10Result{}, err
	}
	defer eng.Close()
	ring := eng.EnableTracing(1024)

	cls := &schema.Class{
		Name:   "account",
		Fields: []schema.Field{{Name: "balance", Kind: value.KindInt, Default: value.Int(1000)}},
		Methods: []schema.Method{
			{Name: "deposit", Params: []schema.Param{{Name: "a", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
			{Name: "withdraw", Params: []schema.Param{{Name: "a", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
		},
		Triggers: []schema.Trigger{
			{Name: "Large", Perpetual: true, Event: "after withdraw(a) && a > 100"},
			{Name: "Pair", Perpetual: true, Event: "prior(after deposit, after withdraw)"},
			{Name: "AnyDep", Perpetual: true, Event: "after deposit"},
		},
	}
	impl := engine.ClassImpl{
		Methods: map[string]engine.MethodImpl{
			"deposit": func(ctx *engine.MethodCtx) (value.Value, error) {
				b, _ := ctx.Get("balance")
				return value.Null(), ctx.Set("balance", value.Int(b.AsInt()+ctx.Arg("a").AsInt()))
			},
			"withdraw": func(ctx *engine.MethodCtx) (value.Value, error) {
				b, _ := ctx.Get("balance")
				return value.Null(), ctx.Set("balance", value.Int(b.AsInt()-ctx.Arg("a").AsInt()))
			},
		},
		Actions: map[string]engine.ActionFunc{
			"Large":  func(*engine.ActionCtx) error { return nil },
			"Pair":   func(*engine.ActionCtx) error { return nil },
			"AnyDep": func(*engine.ActionCtx) error { return nil },
		},
	}
	if _, err := eng.RegisterClass(cls, impl, nil); err != nil {
		return E10Result{}, err
	}

	rng := rand.New(rand.NewSource(seed))
	oids := make([]store.OID, objects)
	err = eng.Transact(func(tx *engine.Tx) error {
		for i := range oids {
			oid, err := tx.NewObject("account", nil)
			if err != nil {
				return err
			}
			oids[i] = oid
			for _, tr := range cls.Triggers {
				if err := tx.Activate(oid, tr.Name); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return E10Result{}, err
	}

	for i := 0; i < txs; i++ {
		err := eng.Transact(func(tx *engine.Tx) error {
			for j := 0; j < 4; j++ {
				oid := oids[rng.Intn(len(oids))]
				amount := value.Int(int64(rng.Intn(300)))
				method := "deposit"
				if rng.Intn(2) == 0 {
					method = "withdraw"
				}
				if _, err := tx.Call(oid, method, amount); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return E10Result{}, err
		}
	}

	stats := eng.Stats()
	snap := eng.Metrics().Snapshot()
	var firings, latCount uint64
	for _, ts := range snap.Triggers {
		firings += ts.Firings
		latCount += ts.Latency.Count
	}
	if firings != stats.Firings || latCount != stats.Firings {
		return E10Result{}, fmt.Errorf(
			"workload: metric invariant broken: per-trigger firings %d, latency counts %d, stats firings %d",
			firings, latCount, stats.Firings)
	}
	return E10Result{
		Stats:         stats,
		Metrics:       snap,
		TraceRetained: ring.Len(),
		TraceTotal:    ring.Total(),
	}, nil
}
