package workload

import (
	"strings"
	"testing"
)

func TestRunE6AllCouplingsCompile(t *testing.T) {
	rows, err := RunE6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want the paper's nine couplings", len(rows))
	}
	wantModes := map[string]bool{
		"Immediate-Immediate": true, "Immediate-Deferred": true,
		"Immediate-Dependent": true, "Immediate-Independent": true,
		"Deferred-Immediate": true, "Deferred-Dependent": true,
		"Deferred-Independent": true, "Dependent-Immediate": true,
		"Independent-Immediate": true,
	}
	for _, r := range rows {
		if !wantModes[r.Mode] {
			t.Fatalf("unexpected mode %q", r.Mode)
		}
		if r.DFAStates < 2 || r.DFAStates > 16 {
			t.Fatalf("%s: %d states — couplings should stay small", r.Mode, r.DFAStates)
		}
		if !strings.Contains(r.Event, "withdraw") {
			t.Fatalf("%s: event %q", r.Mode, r.Event)
		}
	}
	// Immediate-Immediate is the smallest (a masked logical event).
	if rows[0].DFAStates != 2 {
		t.Fatalf("Immediate-Immediate has %d states", rows[0].DFAStates)
	}
}

func TestRunE7MatchesExpectations(t *testing.T) {
	rows, err := RunE7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Fires != r.Expected {
			t.Fatalf("%s: fired %d, expected %d", r.Spec, r.Fires, r.Expected)
		}
	}
}

func TestRunE2EngineOneWordPerTrigger(t *testing.T) {
	row, err := RunE2Engine(16)
	if err != nil {
		t.Fatal(err)
	}
	if row.Objects != 16 || row.TriggersPerObject != 9 {
		t.Fatalf("row %+v", row)
	}
	if row.StateWordsPerObject != row.TriggersPerObject {
		t.Fatalf("per-object words %d ≠ triggers %d — the §5 claim broke",
			row.StateWordsPerObject, row.TriggersPerObject)
	}
}
