// Package workload provides deterministic generators and experiment
// runners for the reproduction's evaluation harness (DESIGN.md §5).
// The paper has no measured tables or figures, so each experiment
// quantifies one of its claims; cmd/odebench prints the tables and
// bench_test.go exposes the same code paths as Go benchmarks.
package workload

import (
	"math/rand"

	"ode/internal/algebra"
)

// RandomHistory returns a uniform random symbol sequence.
func RandomHistory(rng *rand.Rand, numSymbols, length int) []int {
	h := make([]int, length)
	for i := range h {
		h[i] = rng.Intn(numSymbols)
	}
	return h
}

// RandomExpr builds a random event expression over numSymbols symbols
// with bounded depth — the generator shared by the E1/E3/E5
// experiments (mirroring the property-test generators).
func RandomExpr(rng *rand.Rand, numSymbols, depth int) *algebra.Expr {
	if depth <= 0 || rng.Intn(4) == 0 {
		return algebra.Atom(rng.Intn(numSymbols))
	}
	sub := func() *algebra.Expr { return RandomExpr(rng, numSymbols, depth-1) }
	switch rng.Intn(11) {
	case 0:
		return algebra.Or(sub(), sub())
	case 1:
		return algebra.And(sub(), sub())
	case 2:
		return algebra.Not(sub())
	case 3:
		return algebra.Relative(sub(), sub())
	case 4:
		return algebra.Plus(sub())
	case 5:
		return algebra.Prior(sub(), sub())
	case 6:
		return algebra.Sequence(sub(), sub())
	case 7:
		return algebra.Choose(sub(), 1+rng.Intn(4))
	case 8:
		return algebra.Every(sub(), 1+rng.Intn(4))
	case 9:
		return algebra.Fa(sub(), sub(), sub())
	default:
		return algebra.FaAbs(sub(), sub(), sub())
	}
}

// PaperExprs returns the composite events of the paper's running
// examples, over an abstract alphabet. The symbol legend:
//
//	0 after deposit      1 before withdraw   2 after withdraw-large
//	3 after withdraw     4 after access      5 after tbegin
//	6 before tcomplete   7 after tcommit     8 after tabort
//	9 dayBegin (timer)  10 dayEnd (timer)   11 after update
type PaperExprs struct {
	Names []string
	Exprs []*algebra.Expr
}

// NumPaperSymbols is the alphabet size of PaperExprs.
const NumPaperSymbols = 12

// Paper builds the stockRoom trigger set T1–T8 (§3.5) plus the §3.4
// transaction-commit example, as algebra expressions.
func Paper() PaperExprs {
	const (
		deposit = iota
		beforeWithdraw
		withdrawLarge
		withdraw
		access
		tbegin
		tcomplete
		tcommit
		tabort
		dayBegin
		dayEnd
		update
	)
	a := algebra.Atom
	anyWithdraw := algebra.Or(a(withdrawLarge), a(withdraw))
	return PaperExprs{
		Names: []string{
			"T1 before-withdraw-unauth",
			"T2 withdraw-below-reorder",
			"T3 dayEnd",
			"T4 fifth-commit-of-day",
			"T5 every-5-access",
			"T6 large-withdrawal",
			"T7 fifth-large-wdr-of-day",
			"T8 deposit-then-withdraw",
			"S4 commit-after-update",
		},
		Exprs: []*algebra.Expr{
			a(beforeWithdraw),
			anyWithdraw,
			a(dayEnd),
			algebra.Relative(a(dayBegin),
				algebra.And(
					algebra.Prior(algebra.Choose(a(tcommit), 5), a(tcommit)),
					algebra.Not(algebra.Prior(a(dayBegin), a(tcommit))),
				)),
			algebra.Every(a(access), 5),
			a(withdrawLarge),
			algebra.Fa(a(dayBegin), algebra.Choose(a(withdrawLarge), 5), a(dayBegin)),
			algebra.SequenceList(a(deposit), a(beforeWithdraw), anyWithdraw),
			algebra.Fa(a(tbegin),
				algebra.Prior(a(update), a(tcommit)),
				algebra.Or(a(tcommit), a(tabort))),
		},
	}
}
