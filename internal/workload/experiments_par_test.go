package workload

import "testing"

// TestRunE11 exercises the parallel driver end to end at small scale —
// volatile and persistent — relying on RunE11's internal metric
// reconciliation as the correctness oracle.
func TestRunE11(t *testing.T) {
	for _, persistent := range []bool{false, true} {
		rows, err := RunE11(20, 4, 7, persistent, []int{1, 2, 4})
		if err != nil {
			t.Fatalf("persistent=%v: %v", persistent, err)
		}
		if len(rows) != 3 {
			t.Fatalf("persistent=%v: got %d rows", persistent, len(rows))
		}
		for _, r := range rows {
			if r.Persistent != persistent {
				t.Errorf("row %+v: wrong persistent flag", r)
			}
			if r.Calls != r.Goroutines*20*4 {
				t.Errorf("row %+v: wrong call count", r)
			}
			if r.OpsPerSec <= 0 {
				t.Errorf("row %+v: non-positive throughput", r)
			}
			if r.Firings == 0 {
				t.Errorf("row %+v: workload fired no triggers", r)
			}
		}
	}
}
