package workload

import "testing"

// TestRunE15Smoke runs a short open-loop measurement and checks the
// row invariants: every scheduled transaction is observed, quantiles
// are monotone, and the firing count is plausible for the mix.
func TestRunE15Smoke(t *testing.T) {
	rows, err := RunE15(200, 8, 4, 92, []float64{4000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("want 1 row, got %d", len(rows))
	}
	r := rows[0]
	if r.TargetRate != 4000 || r.Txs != 200 || r.Workers != 4 {
		t.Fatalf("row echoes wrong config: %+v", r)
	}
	if r.AchievedRate <= 0 {
		t.Fatalf("achieved rate %g", r.AchievedRate)
	}
	if r.P50Ns == 0 || r.P50Ns > r.P90Ns || r.P90Ns > r.P99Ns || r.P99Ns > r.P999Ns {
		t.Fatalf("quantiles not monotone: %+v", r)
	}
	if r.P999Ns > r.MaxNs {
		t.Fatalf("p99.9 %d exceeds max %d", r.P999Ns, r.MaxNs)
	}
	if r.MeanNs <= 0 {
		t.Fatalf("mean %g", r.MeanNs)
	}
	// 200 txs × 4 calls, half deposits: AnyDep alone fires ~400 times.
	if r.Firings == 0 {
		t.Fatal("workload fired nothing")
	}
	if r.Late < 0 || r.Late > r.Txs {
		t.Fatalf("late count %d out of range", r.Late)
	}
}

// TestRunE15RejectsBadRate: a non-positive arrival rate is a usage
// error, not a hang.
func TestRunE15RejectsBadRate(t *testing.T) {
	if _, err := RunE15(10, 2, 2, 1, []float64{0}); err == nil {
		t.Fatal("rate 0 should be rejected")
	}
}
