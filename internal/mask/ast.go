package mask

import (
	"fmt"
	"strings"

	"ode/internal/value"
)

// Expr is a parsed mask expression. Expressions are immutable.
type Expr struct {
	op    exprOp
	val   value.Value // opLit
	name  string      // opVar, opCall, opField
	args  []*Expr     // opCall arguments; unary/binary operands
	binop string      // opBinary operator text
}

type exprOp int

const (
	opLit exprOp = iota
	opVar
	opField  // args[0] . name
	opCall   // name(args...)
	opUnary  // binop is "!" or "-"
	opBinary // binop is one of && || == != < <= > >= + - * / %
)

// String renders the expression in source-like syntax.
func (e *Expr) String() string {
	var b strings.Builder
	e.format(&b)
	return b.String()
}

func (e *Expr) format(b *strings.Builder) {
	switch e.op {
	case opLit:
		b.WriteString(e.val.String())
	case opVar:
		b.WriteString(e.name)
	case opField:
		e.args[0].format(b)
		b.WriteByte('.')
		b.WriteString(e.name)
	case opCall:
		b.WriteString(e.name)
		b.WriteByte('(')
		for i, a := range e.args {
			if i > 0 {
				b.WriteString(", ")
			}
			a.format(b)
		}
		b.WriteByte(')')
	case opUnary:
		b.WriteString(e.binop)
		e.args[0].format(b)
	case opBinary:
		b.WriteByte('(')
		e.args[0].format(b)
		b.WriteByte(' ')
		b.WriteString(e.binop)
		b.WriteByte(' ')
		e.args[1].format(b)
		b.WriteByte(')')
	default:
		panic(fmt.Sprintf("mask: unknown op %d", e.op))
	}
}

// Vars returns the free variable names referenced by the expression
// (bases of field accesses included, call names excluded). The
// resolver uses this to bind masks to event and trigger parameters.
func (e *Expr) Vars() []string {
	seen := map[string]bool{}
	var out []string
	var walk func(x *Expr)
	walk = func(x *Expr) {
		if x.op == opVar && !seen[x.name] {
			seen[x.name] = true
			out = append(out, x.name)
		}
		for _, a := range x.args {
			walk(a)
		}
	}
	walk(e)
	return out
}

// Calls returns the function names invoked anywhere in the expression.
func (e *Expr) Calls() []string {
	seen := map[string]bool{}
	var out []string
	var walk func(x *Expr)
	walk = func(x *Expr) {
		if x.op == opCall && !seen[x.name] {
			seen[x.name] = true
			out = append(out, x.name)
		}
		for _, a := range x.args {
			walk(a)
		}
	}
	walk(e)
	return out
}

// Lit builds a literal expression; exposed for programmatic mask
// construction in tests and the coupling combinators.
func Lit(v value.Value) *Expr { return &Expr{op: opLit, val: v} }

// Var builds a variable reference.
func Var(name string) *Expr { return &Expr{op: opVar, name: name} }

// Field builds base.name.
func Field(base *Expr, name string) *Expr {
	return &Expr{op: opField, name: name, args: []*Expr{base}}
}

// Call builds name(args...).
func Call(name string, args ...*Expr) *Expr {
	return &Expr{op: opCall, name: name, args: args}
}

// Binary builds (a op b).
func Binary(op string, a, b *Expr) *Expr {
	return &Expr{op: opBinary, binop: op, args: []*Expr{a, b}}
}

// Unary builds op a, where op is "!" or "-".
func Unary(op string, a *Expr) *Expr {
	return &Expr{op: opUnary, binop: op, args: []*Expr{a}}
}
