package mask

import "ode/internal/value"

// Batch evaluation support: the posting engine's PostBatch hot path
// evaluates many compiled programs per batch and cannot afford the
// per-evaluation atomic metric updates (or per-row allocations) the
// one-at-a-time path pays. EvalBits runs one trigger's mask bits and
// reports counts for a deferred flush; Arena hands out reusable dense
// value rows for batch argument binding.

// EvalBits evaluates the compiled program of every mask bit set in
// used over the dense event and trigger parameter slices, returning
// the verdict bits. evals and falses report how many programs ran and
// how many returned false, so callers can batch their metric updates
// instead of paying one atomic add per bit. progs[bit] must be
// non-nil for every used bit (the engine compiles exactly the used
// bits at registration). The first evaluation error aborts the scan;
// the erroring evaluation is included in evals.
func EvalBits(progs []*Program, used uint32, ev, trig []value.Value, h Host) (bits uint32, evals, falses uint32, err error) {
	for bit := range progs {
		if used&(1<<uint(bit)) == 0 {
			continue
		}
		evals++
		ok, perr := progs[bit].EvalBool(ev, trig, h)
		if perr != nil {
			return 0, evals, falses, perr
		}
		if ok {
			bits |= 1 << uint(bit)
		} else {
			falses++
		}
	}
	return bits, evals, falses, nil
}

// Arena hands out dense value rows backed by one growable buffer.
// Rows stay valid until Reset; Reset recycles the whole buffer at
// once (every previously returned row is dead). The batch-posting
// plan allocates one row per method at plan-build time and overwrites
// it in place per entry, so steady-state posting allocates nothing.
type Arena struct {
	buf []value.Value
}

// Row carves a zeroed n-value row out of the arena. The row's
// capacity is clipped, so appends through it can never clobber a
// neighboring row.
func (a *Arena) Row(n int) []value.Value {
	base := len(a.buf)
	for i := 0; i < n; i++ {
		a.buf = append(a.buf, value.Value{})
	}
	return a.buf[base:len(a.buf):len(a.buf)]
}

// Reset recycles the arena. Rows handed out before the call must not
// be used again.
func (a *Arena) Reset() {
	a.buf = a.buf[:0]
}
