package mask

import (
	"fmt"

	"ode/internal/value"
)

// Tiny aliases keep the parser readable without importing value there.
func intVal(i int64) value.Value     { return value.Int(i) }
func floatVal(f float64) value.Value { return value.Float(f) }
func strVal(s string) value.Value    { return value.Str(s) }
func boolVal(b bool) value.Value     { return value.Bool(b) }
func nullVal() value.Value           { return value.Null() }

// Env supplies name resolution during evaluation. A mask evaluated at
// event time sees the basic event's parameters, the trigger's
// activation parameters and the owning object's fields; the engine
// layers these into one Env.
type Env interface {
	// Lookup resolves a free variable.
	Lookup(name string) (value.Value, bool)
	// Field resolves base.name, e.g. reading a field of a referenced
	// object.
	Field(base value.Value, name string) (value.Value, error)
	// Call invokes a registered function or member function.
	Call(name string, args []value.Value) (value.Value, error)
}

// MapEnv is a simple Env over a variable map and a function map; field
// access is an error. It is used by tests and by contexts with no
// object store at hand.
type MapEnv struct {
	Vars  map[string]value.Value
	Funcs map[string]func(args []value.Value) (value.Value, error)
}

// Lookup implements Env.
func (m *MapEnv) Lookup(name string) (value.Value, bool) {
	v, ok := m.Vars[name]
	return v, ok
}

// Field implements Env.
func (m *MapEnv) Field(base value.Value, name string) (value.Value, error) {
	return value.Null(), fmt.Errorf("mask: no field access in this context (.%s)", name)
}

// Call implements Env.
func (m *MapEnv) Call(name string, args []value.Value) (value.Value, error) {
	fn, ok := m.Funcs[name]
	if !ok {
		return value.Null(), fmt.Errorf("mask: unknown function %q", name)
	}
	return fn(args)
}

// Eval evaluates the expression under env. Boolean operators
// short-circuit; all type errors surface as errors, never panics.
func (e *Expr) Eval(env Env) (value.Value, error) {
	switch e.op {
	case opLit:
		return e.val, nil

	case opVar:
		v, ok := env.Lookup(e.name)
		if !ok {
			return value.Null(), fmt.Errorf("mask: unknown name %q", e.name)
		}
		return v, nil

	case opField:
		base, err := e.args[0].Eval(env)
		if err != nil {
			return value.Null(), err
		}
		return env.Field(base, e.name)

	case opCall:
		args := make([]value.Value, len(e.args))
		for i, a := range e.args {
			v, err := a.Eval(env)
			if err != nil {
				return value.Null(), err
			}
			args[i] = v
		}
		return env.Call(e.name, args)

	case opUnary:
		v, err := e.args[0].Eval(env)
		if err != nil {
			return value.Null(), err
		}
		switch e.binop {
		case "!":
			if v.Kind != value.KindBool {
				return value.Null(), fmt.Errorf("mask: ! needs bool, got %s", v.Kind)
			}
			return value.Bool(!v.AsBool()), nil
		case "-":
			return value.Neg(v)
		}
		return value.Null(), fmt.Errorf("mask: unknown unary %q", e.binop)

	case opBinary:
		switch e.binop {
		case "&&", "||":
			l, err := e.args[0].Eval(env)
			if err != nil {
				return value.Null(), err
			}
			if l.Kind != value.KindBool {
				return value.Null(), fmt.Errorf("mask: %s needs bool operands, got %s", e.binop, l.Kind)
			}
			// Short-circuit.
			if e.binop == "&&" && !l.AsBool() {
				return value.Bool(false), nil
			}
			if e.binop == "||" && l.AsBool() {
				return value.Bool(true), nil
			}
			r, err := e.args[1].Eval(env)
			if err != nil {
				return value.Null(), err
			}
			if r.Kind != value.KindBool {
				return value.Null(), fmt.Errorf("mask: %s needs bool operands, got %s", e.binop, r.Kind)
			}
			return r, nil
		}

		l, err := e.args[0].Eval(env)
		if err != nil {
			return value.Null(), err
		}
		r, err := e.args[1].Eval(env)
		if err != nil {
			return value.Null(), err
		}
		switch e.binop {
		case "==":
			return value.Bool(l.Equal(r)), nil
		case "!=":
			return value.Bool(!l.Equal(r)), nil
		case "<", "<=", ">", ">=":
			c, err := value.Compare(l, r)
			if err != nil {
				return value.Null(), err
			}
			switch e.binop {
			case "<":
				return value.Bool(c < 0), nil
			case "<=":
				return value.Bool(c <= 0), nil
			case ">":
				return value.Bool(c > 0), nil
			default:
				return value.Bool(c >= 0), nil
			}
		case "+", "-", "*", "/", "%":
			return value.Arith(e.binop[0], l, r)
		}
		return value.Null(), fmt.Errorf("mask: unknown operator %q", e.binop)

	default:
		return value.Null(), fmt.Errorf("mask: corrupt expression")
	}
}

// EvalBool evaluates the expression and requires a boolean result —
// the normal entry point for mask checking.
func (e *Expr) EvalBool(env Env) (bool, error) {
	v, err := e.Eval(env)
	if err != nil {
		return false, err
	}
	if v.Kind != value.KindBool {
		return false, fmt.Errorf("mask: predicate evaluated to %s, want bool", v.Kind)
	}
	return v.AsBool(), nil
}
