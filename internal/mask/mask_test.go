package mask

import (
	"strings"
	"testing"

	"ode/internal/value"
)

func env(vars map[string]value.Value) *MapEnv {
	return &MapEnv{
		Vars: vars,
		Funcs: map[string]func([]value.Value) (value.Value, error){
			"user": func(args []value.Value) (value.Value, error) {
				return value.Str("alice"), nil
			},
			"max": func(args []value.Value) (value.Value, error) {
				best := args[0]
				for _, a := range args[1:] {
					if c, _ := value.Compare(a, best); c > 0 {
						best = a
					}
				}
				return best, nil
			},
		},
	}
}

func evalBool(t *testing.T, src string, vars map[string]value.Value) bool {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	got, err := e.EvalBool(env(vars))
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return got
}

func TestLiteralAndComparison(t *testing.T) {
	cases := map[string]bool{
		"1 < 2":             true,
		"2 <= 2":            true,
		"3 > 4":             false,
		"3 >= 3":            true,
		"2 == 2.0":          true,
		"2 != 3":            true,
		`"abc" < "abd"`:     true,
		`"x" == "x"`:        true,
		"true && false":     false,
		"true || false":     true,
		"!false":            true,
		"1 + 2 * 3 == 7":    true,
		"(1 + 2) * 3 == 9":  true,
		"7 % 3 == 1":        true,
		"10 / 4 == 2":       true, // integer division
		"10.0 / 4 == 2.5":   true,
		"-3 < 0":            true,
		"1 < 2 && 2 < 3":    true,
		"null == null":      true,
		"'sq' == \"sq\"":    true,
		"\"a\\n\" != \"a\"": true,
	}
	for src, want := range cases {
		if got := evalBool(t, src, nil); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestVariables(t *testing.T) {
	vars := map[string]value.Value{
		"q":       value.Int(1500),
		"balance": value.Float(432.50),
		"name":    value.Str("widget"),
	}
	// The paper's §3.2 example: a "large withdrawal" mask.
	if !evalBool(t, "q > 1000", vars) {
		t.Fatal("q > 1000 should hold for q=1500")
	}
	if evalBool(t, "balance >= 500.00", vars) {
		t.Fatal("balance >= 500 should fail for 432.50")
	}
	if !evalBool(t, `name == "widget" && q - 500 > 900`, vars) {
		t.Fatal("combined mask failed")
	}
}

func TestCalls(t *testing.T) {
	// The paper's T1: !authorized(user()).
	vars := map[string]value.Value{"limit": value.Int(10)}
	e := MustParse("max(3, limit, 7) == 10")
	got, err := e.EvalBool(env(vars))
	if err != nil || !got {
		t.Fatalf("max call: %v, %v", got, err)
	}
	e2 := MustParse(`user() == "alice"`)
	got, err = e2.EvalBool(env(nil))
	if err != nil || !got {
		t.Fatalf("user call: %v, %v", got, err)
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand would error (unknown name); short-circuiting
	// must prevent evaluation.
	if !evalBool(t, "true || nosuch", nil) {
		t.Fatal("|| short-circuit")
	}
	if evalBool(t, "false && nosuch", nil) {
		t.Fatal("&& short-circuit")
	}
	// Without short-circuit the error must surface.
	e := MustParse("false || nosuch")
	if _, err := e.EvalBool(env(nil)); err == nil {
		t.Fatal("expected unknown-name error")
	}
}

func TestFieldAccessViaEnv(t *testing.T) {
	// An env that models i.balance for an object-reference value.
	fieldEnv := &fieldTestEnv{}
	e := MustParse("i.balance < reorder")
	v, err := e.EvalBool(fieldEnv)
	if err != nil {
		t.Fatal(err)
	}
	if !v {
		t.Fatal("i.balance < reorder should hold (50 < 100)")
	}
	// Nested field path.
	e2 := MustParse("i.supplier.rating > 4")
	v, err = e2.EvalBool(fieldEnv)
	if err != nil || !v {
		t.Fatalf("nested field: %v, %v", v, err)
	}
}

type fieldTestEnv struct{}

func (*fieldTestEnv) Lookup(name string) (value.Value, bool) {
	switch name {
	case "i":
		return value.ID(1), true
	case "reorder":
		return value.Int(100), true
	}
	return value.Null(), false
}

func (*fieldTestEnv) Field(base value.Value, name string) (value.Value, error) {
	switch {
	case base.Kind == value.KindID && base.AsID() == 1 && name == "balance":
		return value.Int(50), nil
	case base.Kind == value.KindID && base.AsID() == 1 && name == "supplier":
		return value.ID(2), nil
	case base.Kind == value.KindID && base.AsID() == 2 && name == "rating":
		return value.Int(5), nil
	}
	return value.Null(), errUnknownField
}

var errUnknownField = errString("unknown field")

type errString string

func (e errString) Error() string { return string(e) }

func (*fieldTestEnv) Call(string, []value.Value) (value.Value, error) {
	return value.Null(), errString("no funcs")
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "1 +", "(1", "q >", "max(1,", "a.", "1 ⊕ 2", `"unterminated`,
		"1 2", ") + 1", `"bad \q escape"`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	for _, src := range []string{
		"nosuch",
		"1 && true",
		"!1",
		"-true",
		"1 < \"a\"",
		"true + false",
		"1 / 0",
		"nofunc()",
		"true && 1",
	} {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := e.EvalBool(env(nil)); err == nil {
			t.Errorf("EvalBool(%q) succeeded, want error", src)
		}
	}
	// Non-bool result is an EvalBool error even when Eval succeeds.
	e := MustParse("1 + 1")
	if _, err := e.EvalBool(env(nil)); err == nil {
		t.Error("EvalBool of numeric expression should error")
	}
}

func TestVarsAndCalls(t *testing.T) {
	e := MustParse("i.balance < reorder(i) && q > 0 && user() == owner")
	vars := e.Vars()
	wantVars := map[string]bool{"i": true, "q": true, "owner": true}
	if len(vars) != len(wantVars) {
		t.Fatalf("Vars = %v", vars)
	}
	for _, v := range vars {
		if !wantVars[v] {
			t.Fatalf("unexpected var %q", v)
		}
	}
	calls := e.Calls()
	if len(calls) != 2 || calls[0] != "reorder" && calls[1] != "reorder" {
		t.Fatalf("Calls = %v", calls)
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"q > 1000",
		"i.balance < reorder(i)",
		"!authorized(user())",
		"(a + b) * c == d || x < y",
	}
	for _, src := range srcs {
		e := MustParse(src)
		// Re-parsing the rendering must give an identical rendering
		// (normal form stability).
		again := MustParse(e.String())
		if e.String() != again.String() {
			t.Errorf("%q: rendering unstable: %q vs %q", src, e.String(), again.String())
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("((")
}

func TestOperatorPrecedence(t *testing.T) {
	// ! binds tighter than &&; && tighter than ||; comparison tighter
	// than &&.
	if !evalBool(t, "false && false || true", nil) {
		t.Fatal("|| should be outermost")
	}
	if evalBool(t, "!true && false || false", nil) {
		t.Fatal("!true && false || false should be false")
	}
	e := MustParse("a < b && c")
	if !strings.Contains(e.String(), "(a < b)") {
		t.Fatalf("precedence mis-parse: %s", e)
	}
}

func TestMapEnvFieldRejected(t *testing.T) {
	e := MustParse("x.f > 1")
	env := &MapEnv{Vars: map[string]value.Value{"x": value.ID(1)}}
	if _, err := e.EvalBool(env); err == nil {
		t.Fatal("MapEnv field access succeeded")
	}
}

func TestUnaryMinusAndModPrecedence(t *testing.T) {
	if !evalBool(t, "-(3) + 4 == 1", nil) {
		t.Fatal("unary minus")
	}
	if !evalBool(t, "10 % 4 * 2 == 4", nil) {
		t.Fatal("mod/mul precedence")
	}
	if !evalBool(t, "--4 == 4", nil) {
		t.Fatal("double negation")
	}
}

func TestMaskBuildersRender(t *testing.T) {
	e := Binary("&&",
		Unary("!", Call("flag")),
		Binary(">=", Field(Var("obj"), "weight"), Lit(value.Float(2.5))))
	want := "(!flag() && (obj.weight >= 2.5))"
	if got := e.String(); got != want {
		t.Fatalf("render %q want %q", got, want)
	}
}
