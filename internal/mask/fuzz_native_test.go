package mask

import (
	"strings"
	"testing"
)

// FuzzParseMask is the native `go test -fuzz` harness for the
// disjointness-mask parser (§3.2 boolean/relational expressions):
// arbitrary input must never panic, and whatever parses must render
// stably (parse ∘ render is the identity on renderings). A short
// -fuzztime run is wired into `make fuzz`; longer campaigns run with
//
//	go test -fuzz FuzzParseMask ./internal/mask/
func FuzzParseMask(f *testing.F) {
	seeds := []string{
		"n > 50",
		"q >= 1000 && q < 2000",
		"balance < 500.00",
		"authorized(user())",
		"x == y || !(a != b)",
		"(n + 1) * 2 <= limit - 3",
		"s == \"widget\"",
		"inv.qty > reorder(inv.item)",
		"true && false",
		"-n < 0",
		"a.b.c >= d.e",
		"f(g(h(1)), 2, 3) == 0",
		"",
		"n >",
		"((((((x))))))",
		"1 +",
		"\"unterminated",
		"n ? 1 : 2",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Pathological inputs get arbitrarily deep; bound the work, not
		// the grammar.
		if len(src) > 1<<10 {
			return
		}
		e, err := Parse(src)
		if err != nil || e == nil {
			return // rejecting is fine; panicking is the bug
		}
		rendered := e.String()
		back, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendering of accepted input does not reparse:\n  input    %q\n  rendered %q\n  error    %v",
				src, rendered, err)
		}
		if again := back.String(); again != rendered {
			t.Fatalf("rendering unstable:\n  input  %q\n  first  %q\n  second %q", src, rendered, again)
		}
		if strings.ContainsAny(rendered, "\n\r") {
			t.Fatalf("rendering contains newlines: %q", rendered)
		}
	})
}
