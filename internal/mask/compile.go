package mask

import (
	"fmt"

	"ode/internal/value"
)

// Compiled mask programs.
//
// The AST interpreter in eval.go resolves every name through a
// string-keyed Env at each evaluation — fine for the oracle, too slow
// for the posting hot path. CompileExpr lowers an expression once, at
// class-registration time, into a tree of closures with every free
// variable pre-resolved to a slot: an index into the happening's dense
// parameter slice, an index into the trigger activation's dense
// parameter slice, or an object-field slot served by the Host. Constant
// subtrees are folded. The result evaluates with zero heap allocations
// for call-free expressions.
//
// The interpreter remains the semantic oracle: a compiled program must
// return the same value or the same error string as Expr.Eval over an
// equivalent environment (see compile_test.go for the property test).

// SlotKind says which dense store a resolved variable reads from.
type SlotKind uint8

const (
	// SlotEventParam reads the happening's dense parameter slice.
	SlotEventParam SlotKind = iota
	// SlotTrigParam reads the trigger activation's dense parameter slice.
	SlotTrigParam
	// SlotField reads an object field through the Host.
	SlotField
)

// Slot is a resolved variable location.
type Slot struct {
	Kind  SlotKind
	Index int
	// Name is the resolved name at the destination (the schema field
	// name for SlotField, the parameter name otherwise); kept for
	// diagnostics and for Hosts that store fields by name.
	Name string
}

// Resolver maps free variable names to slots at compile time. The
// engine supplies one per (trigger, event kind) pair since rename maps
// and parameter layouts differ per pair.
type Resolver interface {
	ResolveVar(name string) (Slot, bool)
}

// Host supplies the residual dynamic operations a compiled program
// cannot pre-resolve: object-field reads, dotted field projection, and
// function calls. Implementations should be passed by pointer so the
// interface conversion does not allocate.
type Host interface {
	// Field reads object-field slot ix (name is the schema field name).
	Field(ix int, name string) (value.Value, bool)
	// DotField resolves base.name, mirroring Env.Field.
	DotField(base value.Value, name string) (value.Value, error)
	// Call invokes a function, mirroring Env.Call.
	Call(name string, args []value.Value) (value.Value, error)
}

// progFn is one compiled node. The dense slices are passed down the
// closure tree by value; nothing escapes, so evaluation of a call-free
// program performs no heap allocation.
type progFn func(ev, trig []value.Value, h Host) (value.Value, error)

// Program is a compiled mask expression.
type Program struct {
	fn   progFn
	src  *Expr
	fast *fastCmp
}

// String renders the source expression the program was compiled from.
func (p *Program) String() string { return p.src.String() }

// Eval runs the program. ev and trig are the dense event- and
// trigger-parameter slices; h serves fields and calls.
func (p *Program) Eval(ev, trig []value.Value, h Host) (value.Value, error) {
	return p.fn(ev, trig, h)
}

// fastCmp is the straight-line fast path for the commonest mask shape:
// one event parameter compared against an integer literal (`n > 100`).
// CompileExpr detects it after folding; EvalBool takes it only when the
// parameter is present and holds an int, so every other case — missing
// slot, non-int value, any other expression — falls through to the
// closure tree and keeps its exact semantics and error text.
// rhs is held as float64 because value.Compare and value.Equal put all
// numeric pairs through AsFloat — the fast path must round exactly
// where they round.
type fastCmp struct {
	ix  int
	op  uint8
	rhs float64
}

const (
	cmpLT uint8 = iota
	cmpLE
	cmpGT
	cmpGE
	cmpEQ
	cmpNE
)

// detectFastCmp recognizes Binary(cmp, Var(event param), IntLit) in the
// folded expression. Int-vs-int comparison through value.Compare and
// equality through value.Equal are both plain numeric comparison, so
// the inline verdict cannot diverge from the closure tree.
func detectFastCmp(e *Expr, r Resolver) *fastCmp {
	if e.op != opBinary {
		return nil
	}
	var op uint8
	switch e.binop {
	case "<":
		op = cmpLT
	case "<=":
		op = cmpLE
	case ">":
		op = cmpGT
	case ">=":
		op = cmpGE
	case "==":
		op = cmpEQ
	case "!=":
		op = cmpNE
	default:
		return nil
	}
	v, lit := e.args[0], e.args[1]
	if v.op != opVar || lit.op != opLit || lit.val.Kind != value.KindInt {
		return nil
	}
	s, ok := r.ResolveVar(v.name)
	if !ok || s.Kind != SlotEventParam {
		return nil
	}
	return &fastCmp{ix: s.Index, op: op, rhs: float64(lit.val.AsInt())}
}

// EvalBool runs the program and requires a boolean verdict — the mask
// checking entry point, mirroring Expr.EvalBool.
func (p *Program) EvalBool(ev, trig []value.Value, h Host) (bool, error) {
	if f := p.fast; f != nil && f.ix < len(ev) && ev[f.ix].Kind == value.KindInt {
		l := float64(ev[f.ix].AsInt())
		switch f.op {
		case cmpLT:
			return l < f.rhs, nil
		case cmpLE:
			return l <= f.rhs, nil
		case cmpGT:
			return l > f.rhs, nil
		case cmpGE:
			return l >= f.rhs, nil
		case cmpEQ:
			return l == f.rhs, nil
		default:
			return l != f.rhs, nil
		}
	}
	v, err := p.fn(ev, trig, h)
	if err != nil {
		return false, err
	}
	if v.Kind != value.KindBool {
		return false, fmt.Errorf("mask: predicate evaluated to %s, want bool", v.Kind)
	}
	return v.AsBool(), nil
}

// CompileExpr lowers e to a Program with names resolved through r.
// An unresolvable variable is a compile error: the event-language
// resolver has already validated static resolvability of every mask
// variable, so failure here means a resolver bug and should be loud.
func CompileExpr(e *Expr, r Resolver) (*Program, error) {
	folded := foldConst(e)
	fn, err := compileNode(folded, r)
	if err != nil {
		return nil, err
	}
	return &Program{fn: fn, src: e, fast: detectFastCmp(folded, r)}, nil
}

// foldConst rewrites constant subtrees to literals. Folding evaluates
// through the interpreter so semantics cannot drift; subtrees whose
// evaluation errors are left unfolded so the compiled program
// reproduces the interpreter's runtime error. Calls are never folded
// (they may be impure), and short-circuit identities (false && x,
// true || x) drop the unreachable operand exactly as the interpreter
// would never evaluate it.
func foldConst(e *Expr) *Expr {
	switch e.op {
	case opLit, opVar:
		return e

	case opField:
		base := foldConst(e.args[0])
		if base == e.args[0] {
			return e
		}
		return Field(base, e.name)

	case opCall:
		args := make([]*Expr, len(e.args))
		changed := false
		for i, a := range e.args {
			args[i] = foldConst(a)
			changed = changed || args[i] != a
		}
		if !changed {
			return e
		}
		return Call(e.name, args...)

	case opUnary:
		a := foldConst(e.args[0])
		if a.op == opLit {
			if v, err := Unary(e.binop, a).Eval(noEnv{}); err == nil {
				return Lit(v)
			}
		}
		if a == e.args[0] {
			return e
		}
		return Unary(e.binop, a)

	case opBinary:
		l := foldConst(e.args[0])
		r := foldConst(e.args[1])
		if l.op == opLit && l.val.Kind == value.KindBool {
			b := l.val.AsBool()
			// The interpreter never evaluates the right operand here,
			// so dropping it cannot hide a runtime error.
			if e.binop == "&&" && !b {
				return Lit(value.Bool(false))
			}
			if e.binop == "||" && b {
				return Lit(value.Bool(true))
			}
		}
		if l.op == opLit && r.op == opLit {
			if v, err := Binary(e.binop, l, r).Eval(noEnv{}); err == nil {
				return Lit(v)
			}
		}
		if l == e.args[0] && r == e.args[1] {
			return e
		}
		return Binary(e.binop, l, r)

	default:
		return e
	}
}

// noEnv is the environment for folding: constant subtrees touch no
// names, so every resolution is an error (which simply vetoes the fold).
type noEnv struct{}

func (noEnv) Lookup(string) (value.Value, bool) { return value.Null(), false }
func (noEnv) Field(value.Value, string) (value.Value, error) {
	return value.Null(), fmt.Errorf("mask: not constant")
}
func (noEnv) Call(string, []value.Value) (value.Value, error) {
	return value.Null(), fmt.Errorf("mask: not constant")
}

func compileNode(e *Expr, r Resolver) (progFn, error) {
	switch e.op {
	case opLit:
		v := e.val
		return func(_, _ []value.Value, _ Host) (value.Value, error) {
			return v, nil
		}, nil

	case opVar:
		s, ok := r.ResolveVar(e.name)
		if !ok {
			return nil, fmt.Errorf("mask: cannot compile: unresolvable name %q", e.name)
		}
		refName := e.name
		switch s.Kind {
		case SlotEventParam:
			ix := s.Index
			return func(ev, _ []value.Value, _ Host) (value.Value, error) {
				if ix >= len(ev) {
					return value.Null(), fmt.Errorf("mask: unknown name %q", refName)
				}
				return ev[ix], nil
			}, nil
		case SlotTrigParam:
			ix := s.Index
			return func(_, trig []value.Value, _ Host) (value.Value, error) {
				if ix >= len(trig) {
					return value.Null(), fmt.Errorf("mask: unknown name %q", refName)
				}
				return trig[ix], nil
			}, nil
		case SlotField:
			ix, fname := s.Index, s.Name
			return func(_, _ []value.Value, h Host) (value.Value, error) {
				v, ok := h.Field(ix, fname)
				if !ok {
					return value.Null(), fmt.Errorf("mask: unknown name %q", refName)
				}
				return v, nil
			}, nil
		default:
			return nil, fmt.Errorf("mask: cannot compile: bad slot kind %d for %q", s.Kind, e.name)
		}

	case opField:
		base, err := compileNode(e.args[0], r)
		if err != nil {
			return nil, err
		}
		name := e.name
		return func(ev, trig []value.Value, h Host) (value.Value, error) {
			b, err := base(ev, trig, h)
			if err != nil {
				return value.Null(), err
			}
			return h.DotField(b, name)
		}, nil

	case opCall:
		argFns := make([]progFn, len(e.args))
		for i, a := range e.args {
			fn, err := compileNode(a, r)
			if err != nil {
				return nil, err
			}
			argFns[i] = fn
		}
		name := e.name
		n := len(argFns)
		return func(ev, trig []value.Value, h Host) (value.Value, error) {
			// Calls are the one compiled construct that allocates (the
			// argument slice escapes into the Host); masks that call
			// functions are therefore outside the zero-alloc tier.
			args := make([]value.Value, n)
			for i, fn := range argFns {
				v, err := fn(ev, trig, h)
				if err != nil {
					return value.Null(), err
				}
				args[i] = v
			}
			return h.Call(name, args)
		}, nil

	case opUnary:
		a, err := compileNode(e.args[0], r)
		if err != nil {
			return nil, err
		}
		switch e.binop {
		case "!":
			return func(ev, trig []value.Value, h Host) (value.Value, error) {
				v, err := a(ev, trig, h)
				if err != nil {
					return value.Null(), err
				}
				if v.Kind != value.KindBool {
					return value.Null(), fmt.Errorf("mask: ! needs bool, got %s", v.Kind)
				}
				return value.Bool(!v.AsBool()), nil
			}, nil
		case "-":
			return func(ev, trig []value.Value, h Host) (value.Value, error) {
				v, err := a(ev, trig, h)
				if err != nil {
					return value.Null(), err
				}
				return value.Neg(v)
			}, nil
		}
		op := e.binop
		return func(_, _ []value.Value, _ Host) (value.Value, error) {
			return value.Null(), fmt.Errorf("mask: unknown unary %q", op)
		}, nil

	case opBinary:
		l, err := compileNode(e.args[0], r)
		if err != nil {
			return nil, err
		}
		rr, err := compileNode(e.args[1], r)
		if err != nil {
			return nil, err
		}
		op := e.binop
		switch op {
		case "&&", "||":
			and := op == "&&"
			return func(ev, trig []value.Value, h Host) (value.Value, error) {
				lv, err := l(ev, trig, h)
				if err != nil {
					return value.Null(), err
				}
				if lv.Kind != value.KindBool {
					return value.Null(), fmt.Errorf("mask: %s needs bool operands, got %s", op, lv.Kind)
				}
				if and && !lv.AsBool() {
					return value.Bool(false), nil
				}
				if !and && lv.AsBool() {
					return value.Bool(true), nil
				}
				rv, err := rr(ev, trig, h)
				if err != nil {
					return value.Null(), err
				}
				if rv.Kind != value.KindBool {
					return value.Null(), fmt.Errorf("mask: %s needs bool operands, got %s", op, rv.Kind)
				}
				return rv, nil
			}, nil

		case "==":
			return func(ev, trig []value.Value, h Host) (value.Value, error) {
				lv, rv, err := evalPair(l, rr, ev, trig, h)
				if err != nil {
					return value.Null(), err
				}
				return value.Bool(lv.Equal(rv)), nil
			}, nil
		case "!=":
			return func(ev, trig []value.Value, h Host) (value.Value, error) {
				lv, rv, err := evalPair(l, rr, ev, trig, h)
				if err != nil {
					return value.Null(), err
				}
				return value.Bool(!lv.Equal(rv)), nil
			}, nil
		case "<", "<=", ">", ">=":
			return func(ev, trig []value.Value, h Host) (value.Value, error) {
				lv, rv, err := evalPair(l, rr, ev, trig, h)
				if err != nil {
					return value.Null(), err
				}
				c, err := value.Compare(lv, rv)
				if err != nil {
					return value.Null(), err
				}
				switch op {
				case "<":
					return value.Bool(c < 0), nil
				case "<=":
					return value.Bool(c <= 0), nil
				case ">":
					return value.Bool(c > 0), nil
				default:
					return value.Bool(c >= 0), nil
				}
			}, nil
		case "+", "-", "*", "/", "%":
			ab := op[0]
			return func(ev, trig []value.Value, h Host) (value.Value, error) {
				lv, rv, err := evalPair(l, rr, ev, trig, h)
				if err != nil {
					return value.Null(), err
				}
				return value.Arith(ab, lv, rv)
			}, nil
		}
		return func(_, _ []value.Value, _ Host) (value.Value, error) {
			return value.Null(), fmt.Errorf("mask: unknown operator %q", op)
		}, nil

	default:
		return func(_, _ []value.Value, _ Host) (value.Value, error) {
			return value.Null(), fmt.Errorf("mask: corrupt expression")
		}, nil
	}
}

// evalPair evaluates both operands of a strict binary operator in
// left-to-right order, matching the interpreter.
func evalPair(l, r progFn, ev, trig []value.Value, h Host) (value.Value, value.Value, error) {
	lv, err := l(ev, trig, h)
	if err != nil {
		return value.Value{}, value.Value{}, err
	}
	rv, err := r(ev, trig, h)
	if err != nil {
		return value.Value{}, value.Value{}, err
	}
	return lv, rv, nil
}
