package mask

import "fmt"

// Parse parses a mask expression. The grammar, tightest-binding last:
//
//	expr    = and { "||" and }
//	and     = cmp { "&&" cmp }
//	cmp     = add [ ("=="|"!="|"<"|"<="|">"|">=") add ]
//	add     = mul { ("+"|"-") mul }
//	mul     = unary { ("*"|"/"|"%") unary }
//	unary   = "!" unary | "-" unary | postfix
//	postfix = primary { "." ident }
//	primary = int | float | string | "true" | "false" | "null"
//	        | ident "(" [ expr { "," expr } ] ")"
//	        | ident
//	        | "(" expr ")"
func Parse(src string) (*Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("trailing input %q", p.peek().text)
	}
	return e, nil
}

// MustParse is Parse for known-good sources; it panics on error.
func MustParse(src string) *Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) acceptOp(op string) bool {
	if t := p.peek(); t.kind == tokOp && t.text == op {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errorf("expected %q, found %q", op, p.peek().text)
	}
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("mask: %s (at offset %d in %q)",
		fmt.Sprintf(format, args...), p.peek().pos, p.src)
}

func (p *parser) parseExpr() (*Expr, error) {
	e, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptOp("||") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		e = Binary("||", e, r)
	}
	return e, nil
}

func (p *parser) parseAnd() (*Expr, error) {
	e, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.acceptOp("&&") {
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		e = Binary("&&", e, r)
	}
	return e, nil
}

var cmpOps = []string{"==", "!=", "<=", ">=", "<", ">"}

func (p *parser) parseCmp() (*Expr, error) {
	e, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for _, op := range cmpOps {
		if p.acceptOp(op) {
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return Binary(op, e, r), nil
		}
	}
	return e, nil
}

func (p *parser) parseAdd() (*Expr, error) {
	e, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			e = Binary("+", e, r)
		case p.acceptOp("-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			e = Binary("-", e, r)
		default:
			return e, nil
		}
	}
}

func (p *parser) parseMul() (*Expr, error) {
	e, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptOp("*"):
			op = "*"
		case p.acceptOp("/"):
			op = "/"
		case p.acceptOp("%"):
			op = "%"
		default:
			return e, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		e = Binary(op, e, r)
	}
}

func (p *parser) parseUnary() (*Expr, error) {
	if p.acceptOp("!") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary("!", e), nil
	}
	if p.acceptOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary("-", e), nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (*Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.acceptOp(".") {
		t := p.next()
		if t.kind != tokIdent {
			return nil, p.errorf("expected field name after '.', found %q", t.text)
		}
		e = Field(e, t.text)
	}
	return e, nil
}

func (p *parser) parsePrimary() (*Expr, error) {
	t := p.next()
	switch t.kind {
	case tokInt:
		var i int64
		if _, err := fmt.Sscanf(t.text, "%d", &i); err != nil {
			return nil, p.errorf("bad integer %q", t.text)
		}
		return Lit(intVal(i)), nil
	case tokFloat:
		var f float64
		if _, err := fmt.Sscanf(t.text, "%g", &f); err != nil {
			return nil, p.errorf("bad float %q", t.text)
		}
		return Lit(floatVal(f)), nil
	case tokString:
		return Lit(strVal(t.text)), nil
	case tokIdent:
		switch t.text {
		case "true":
			return Lit(boolVal(true)), nil
		case "false":
			return Lit(boolVal(false)), nil
		case "null":
			return Lit(nullVal()), nil
		}
		if p.acceptOp("(") {
			var args []*Expr
			if !p.acceptOp(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.acceptOp(")") {
						break
					}
					if err := p.expectOp(","); err != nil {
						return nil, err
					}
				}
			}
			return Call(t.text, args...), nil
		}
		return Var(t.text), nil
	case tokOp:
		if t.text == "(" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %q", t.text)
}
