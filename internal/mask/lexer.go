// Package mask implements the predicate language used to mask basic
// events (paper §3.2) and composite events (§3.3): boolean expressions
// over event parameters, object state, trigger-activation parameters
// and registered member functions, e.g.
//
//	q > 1000
//	i.balance < reorder(i)
//	!authorized(user())
//
// A mask attached to a logical event is evaluated at the instant its
// basic event is posted; a mask attached to a whole composite event is
// evaluated at detection time against the then-current state.
package mask

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokOp // one of the operator strings below
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// operators, longest first so the lexer is greedy.
var operators = []string{
	"&&", "||", "==", "!=", "<=", ">=",
	"(", ")", ",", ".", "!", "<", ">", "+", "-", "*", "/", "%",
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
			return l.tokens, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '"' || c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if !l.lexOperator() {
				return nil, fmt.Errorf("mask: unexpected character %q at offset %d", c, start)
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' {
			// A dot followed by a non-digit is field access on an int
			// literal — not valid here, but let the parser complain.
			if seenDot || l.pos+1 >= len(l.src) || l.src[l.pos+1] < '0' || l.src[l.pos+1] > '9' {
				break
			}
			seenDot = true
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	kind := tokInt
	if seenDot {
		kind = tokFloat
	}
	l.tokens = append(l.tokens, token{kind: kind, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) lexString() error {
	quote := l.src[l.pos]
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			// The escape set mirrors what Go's %q renderer emits, so any
			// accepted literal's rendering re-parses (parse ∘ render is
			// the identity; the FuzzParseMask harness pins this).
			switch l.src[l.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case 'a':
				b.WriteByte('\a')
			case 'b':
				b.WriteByte('\b')
			case 'f':
				b.WriteByte('\f')
			case 'v':
				b.WriteByte('\v')
			case '\\', '"', '\'':
				b.WriteByte(l.src[l.pos])
			case 'x':
				n, err := l.hexEscape(2)
				if err != nil {
					return err
				}
				b.WriteByte(byte(n))
			case 'u':
				n, err := l.hexEscape(4)
				if err != nil {
					return err
				}
				b.WriteRune(rune(n))
			case 'U':
				n, err := l.hexEscape(8)
				if err != nil {
					return err
				}
				if n > 0x10FFFF {
					return fmt.Errorf("mask: rune escape out of range at offset %d", l.pos)
				}
				b.WriteRune(rune(n))
			default:
				return fmt.Errorf("mask: unknown escape \\%c at offset %d", l.src[l.pos], l.pos)
			}
			l.pos++
			continue
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("mask: unterminated string starting at offset %d", start)
}

// hexEscape consumes exactly width hex digits following the escape
// letter at l.pos and returns their value.
func (l *lexer) hexEscape(width int) (uint32, error) {
	if l.pos+width >= len(l.src) {
		return 0, fmt.Errorf("mask: truncated hex escape at offset %d", l.pos)
	}
	var n uint32
	for i := 1; i <= width; i++ {
		c := l.src[l.pos+i]
		var d uint32
		switch {
		case c >= '0' && c <= '9':
			d = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint32(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint32(c-'A') + 10
		default:
			return 0, fmt.Errorf("mask: bad hex digit %q in escape at offset %d", c, l.pos+i)
		}
		n = n<<4 | d
	}
	l.pos += width
	return n, nil
}

func (l *lexer) lexOperator() bool {
	for _, op := range operators {
		if strings.HasPrefix(l.src[l.pos:], op) {
			l.tokens = append(l.tokens, token{kind: tokOp, text: op, pos: l.pos})
			l.pos += len(op)
			return true
		}
	}
	return false
}
