package mask

import (
	"fmt"
	"math/rand"
	"testing"

	"ode/internal/value"
)

// The compiled-program oracle property, in the style of
// internal/compile/relevance_test.go: for random expressions over a
// fixed name universe and random (partially absent) environments, the
// compiled program and the AST interpreter must agree exactly — same
// value on success, same error string on failure.

// The universe: two event params, two trigger params, two object
// fields, resolved to dense slots by testResolver.
var testUniverse = map[string]Slot{
	"ea": {Kind: SlotEventParam, Index: 0, Name: "ea"},
	"eb": {Kind: SlotEventParam, Index: 1, Name: "eb"},
	"ta": {Kind: SlotTrigParam, Index: 0, Name: "ta"},
	"tb": {Kind: SlotTrigParam, Index: 1, Name: "tb"},
	"fa": {Kind: SlotField, Index: 0, Name: "fa"},
	"fb": {Kind: SlotField, Index: 1, Name: "fb"},
}

type testResolver struct{}

func (testResolver) ResolveVar(name string) (Slot, bool) {
	s, ok := testUniverse[name]
	return s, ok
}

// testHost mirrors the MapEnv the interpreter sees: fields come from a
// map keyed by schema field name, dotted access is an error with the
// MapEnv wording, and calls share the interpreter's function table.
type testHost struct {
	fields map[string]value.Value
	funcs  map[string]func(args []value.Value) (value.Value, error)
}

func (h *testHost) Field(ix int, name string) (value.Value, bool) {
	v, ok := h.fields[name]
	return v, ok
}

func (h *testHost) DotField(base value.Value, name string) (value.Value, error) {
	return value.Null(), fmt.Errorf("mask: no field access in this context (.%s)", name)
}

func (h *testHost) Call(name string, args []value.Value) (value.Value, error) {
	fn, ok := h.funcs[name]
	if !ok {
		return value.Null(), fmt.Errorf("mask: unknown function %q", name)
	}
	return fn(args)
}

var testFuncs = map[string]func(args []value.Value) (value.Value, error){
	// inc(x): x+1 for ints, an error otherwise — exercises both the
	// call success path and call-raised errors.
	"inc": func(args []value.Value) (value.Value, error) {
		if len(args) != 1 || args[0].Kind != value.KindInt {
			return value.Null(), fmt.Errorf("mask: inc wants one int")
		}
		return value.Int(args[0].AsInt() + 1), nil
	},
	// boom always errors; under constant folding it must still fire at
	// runtime (calls are never folded).
	"boom": func(args []value.Value) (value.Value, error) {
		return value.Null(), fmt.Errorf("mask: boom")
	},
}

func randomValue(rng *rand.Rand) value.Value {
	switch rng.Intn(6) {
	case 0:
		return value.Int(int64(rng.Intn(7) - 3))
	case 1:
		return value.Float(float64(rng.Intn(5)) / 2)
	case 2:
		return value.Bool(rng.Intn(2) == 0)
	case 3:
		return value.Str([]string{"a", "b"}[rng.Intn(2)])
	case 4:
		return value.Null()
	default:
		return value.Int(int64(rng.Intn(3))) // bias toward small ints
	}
}

var varNames = []string{"ea", "eb", "ta", "tb", "fa", "fb"}
var binOps = []string{"&&", "||", "==", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/", "%"}

func randomMaskExpr(rng *rand.Rand, depth int) *Expr {
	if depth <= 0 || rng.Intn(4) == 0 {
		if rng.Intn(2) == 0 {
			return Var(varNames[rng.Intn(len(varNames))])
		}
		return Lit(randomValue(rng))
	}
	switch rng.Intn(8) {
	case 0:
		return Unary("!", randomMaskExpr(rng, depth-1))
	case 1:
		return Unary("-", randomMaskExpr(rng, depth-1))
	case 2:
		// Calls: mostly inc, sometimes boom, rarely unknown.
		name := "inc"
		switch rng.Intn(6) {
		case 0:
			name = "boom"
		case 1:
			name = "nosuchfn"
		}
		return Call(name, randomMaskExpr(rng, depth-1))
	case 3:
		return Field(randomMaskExpr(rng, depth-1), "x")
	default:
		op := binOps[rng.Intn(len(binOps))]
		return Binary(op, randomMaskExpr(rng, depth-1), randomMaskExpr(rng, depth-1))
	}
}

func TestCompiledProgramMatchesInterpreterRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1992))
	iters := 400
	if testing.Short() {
		iters = 80
	}
	var okCases, errCases, boolVerdicts int
	for i := 0; i < iters; i++ {
		e := randomMaskExpr(rng, 4)
		prog, err := CompileExpr(e, testResolver{})
		if err != nil {
			t.Fatalf("expr %v: compile failed: %v", e, err)
		}
		for trial := 0; trial < 12; trial++ {
			// Random dense environments with random prefix lengths so
			// absent event/trigger params exercise the unknown-name
			// error on both sides.
			evLen, trigLen := rng.Intn(3), rng.Intn(3)
			ev := make([]value.Value, evLen)
			trig := make([]value.Value, trigLen)
			vars := map[string]value.Value{}
			for j := 0; j < evLen; j++ {
				ev[j] = randomValue(rng)
				vars[[]string{"ea", "eb"}[j]] = ev[j]
			}
			for j := 0; j < trigLen; j++ {
				trig[j] = randomValue(rng)
				vars[[]string{"ta", "tb"}[j]] = trig[j]
			}
			fields := map[string]value.Value{}
			for _, f := range []string{"fa", "fb"} {
				if rng.Intn(4) != 0 { // 1 in 4 absent
					v := randomValue(rng)
					fields[f] = v
					vars[f] = v
				}
			}

			env := &MapEnv{Vars: vars, Funcs: testFuncs}
			host := &testHost{fields: fields, funcs: testFuncs}

			iv, ierr := e.Eval(env)
			cv, cerr := prog.Eval(ev, trig, host)

			if (ierr == nil) != (cerr == nil) {
				t.Fatalf("expr %v (env %v): interpreter err=%v, compiled err=%v", e, vars, ierr, cerr)
			}
			if ierr != nil {
				errCases++
				if ierr.Error() != cerr.Error() {
					t.Fatalf("expr %v (env %v): error mismatch:\n  interpreter: %v\n  compiled:    %v", e, vars, ierr, cerr)
				}
				continue
			}
			okCases++
			if iv.Kind != cv.Kind || iv.String() != cv.String() {
				t.Fatalf("expr %v (env %v): value mismatch: interpreter %v (%s), compiled %v (%s)",
					e, vars, iv, iv.Kind, cv, cv.Kind)
			}

			// Verdict parity through the boolean entry points too.
			ib, iberr := e.EvalBool(env)
			cb, cberr := prog.EvalBool(ev, trig, host)
			if (iberr == nil) != (cberr == nil) {
				t.Fatalf("expr %v: EvalBool err mismatch: %v vs %v", e, iberr, cberr)
			}
			if iberr != nil {
				if iberr.Error() != cberr.Error() {
					t.Fatalf("expr %v: EvalBool error mismatch: %v vs %v", e, iberr, cberr)
				}
			} else {
				boolVerdicts++
				if ib != cb {
					t.Fatalf("expr %v: verdict mismatch: interpreter %v, compiled %v", e, ib, cb)
				}
			}
		}
	}
	if okCases == 0 || errCases == 0 || boolVerdicts == 0 {
		t.Fatalf("generator coverage too thin: ok=%d err=%d verdicts=%d", okCases, errCases, boolVerdicts)
	}
	t.Logf("checked %d ok cases, %d error cases, %d boolean verdicts", okCases, errCases, boolVerdicts)
}

// TestCompileFoldsShortCircuit pins the folding contract: a constant
// false && <call> never invokes the call (the interpreter would not
// either), while an erroring constant subtree like 1/0 is left for
// runtime so the error string matches the interpreter's.
func TestCompileFoldsShortCircuit(t *testing.T) {
	e := Binary("&&", Lit(value.Bool(false)), Call("boom"))
	prog, err := CompileExpr(e, testResolver{})
	if err != nil {
		t.Fatal(err)
	}
	// A nil Host would panic on any call: folding must have removed it.
	v, err := prog.Eval(nil, nil, nil)
	if err != nil || v.Kind != value.KindBool || v.AsBool() {
		t.Fatalf("false && boom() = %v, %v; want false", v, err)
	}

	div := Binary("/", Lit(value.Int(1)), Lit(value.Int(0)))
	prog, err = CompileExpr(div, testResolver{})
	if err != nil {
		t.Fatal(err)
	}
	_, cerr := prog.Eval(nil, nil, &testHost{})
	_, ierr := div.Eval(&MapEnv{})
	if cerr == nil || ierr == nil || cerr.Error() != ierr.Error() {
		t.Fatalf("1/0: compiled err %v, interpreter err %v", cerr, ierr)
	}
}

// TestCompileUnresolvableName: compilation of a name outside the
// resolver's universe must fail loudly, not defer to runtime — the
// event-language resolver guarantees static resolvability.
func TestCompileUnresolvableName(t *testing.T) {
	if _, err := CompileExpr(Var("ghost"), testResolver{}); err == nil {
		t.Fatal("expected compile error for unresolvable name")
	}
}
