package sim

import (
	"fmt"
	"math/rand"
	"time"

	"ode/internal/fault"
	"ode/internal/schema"
	"ode/internal/workload"
)

// Config parameterizes script generation. The zero value is not
// useful; use Defaults() and override.
type Config struct {
	Seed int64
	// Steps is the number of workload steps after the initial
	// create/activate transaction.
	Steps int
	// Objects is the number of objects created per class up front.
	Objects int
	// Persistent runs against a WAL-backed store; required for WAL
	// fault points and crash/recovery cycles.
	Persistent bool
	// Faults enables fault-injection steps.
	Faults bool
	// RandTriggers is the number of generated triggers per class.
	RandTriggers int
	// Depth bounds generated event-spec nesting.
	Depth int
	// Egress runs the durable-egress consumer and its exactly-once
	// oracle alongside the script; with Faults it also injects at the
	// egress fault points and crashes/resumes the deliverer.
	Egress bool
}

// Defaults returns a modest configuration suitable for test budgets.
func Defaults(seed int64) Config {
	return Config{Seed: seed, Steps: 30, Objects: 2, RandTriggers: 2, Depth: 2}
}

// simMethods lists, per class, the method atoms RandomEventSpec may
// use (must stay in sync with classDefs).
var simMethods = [][]workload.SimMethod{
	{{Name: "dep", IntParam: "n"}, {Name: "wdr", IntParam: "n"}, {Name: "png"}},
	{{Name: "bump"}, {Name: "scan"}},
}

// Generate derives a deterministic script from cfg. All randomness is
// consumed here: executing the script involves no random choices, so
// Generate(cfg) + Execute is replayable from the seed alone.
//
// Generated triggers are always non-perpetual: a perpetual trigger
// whose event can label a "before tcomplete" symbol (any expression
// under a top-level negation does) re-fires on every round of the §6
// commit fixpoint and legitimately diverges, which is a property of
// the specification, not a bug the harness should hunt. The fixed
// pool covers perpetual and tcomplete-coupled forms with known-safe
// fa(…) shapes instead.
func Generate(cfg Config) *Script {
	if cfg.Steps <= 0 {
		cfg.Steps = 30
	}
	if cfg.Objects <= 0 {
		cfg.Objects = 2
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sc := &Script{Seed: cfg.Seed, Persistent: cfg.Persistent, Egress: cfg.Egress}

	sc.RandTriggers = make([][]RandTrigger, len(classDefs))
	for ci := range classDefs {
		for i := 0; i < cfg.RandTriggers; i++ {
			sc.RandTriggers[ci] = append(sc.RandTriggers[ci], RandTrigger{
				Name:  fmt.Sprintf("R%d", i),
				Event: workload.RandomEventSpec(rng, simMethods[ci], cfg.Depth),
			})
		}
	}

	// Slot bookkeeping: slot i's class is fixed at generation time.
	// Slots 0..len(classDefs)-1 are reserved — never deleted — so fault
	// steps always have a live victim whose commit writes the WAL.
	var slotClass []int
	var init []Op
	for ci := range classDefs {
		for i := 0; i < cfg.Objects; i++ {
			slot := len(slotClass)
			slotClass = append(slotClass, ci)
			init = append(init, Op{Kind: OpNew, Obj: slot, Class: ci})
			init = append(init, activateAll(sc, rng, slot, ci)...)
		}
	}
	sc.Steps = append(sc.Steps, Step{Kind: StepTx, Ops: init})

	for s := 0; s < cfg.Steps; s++ {
		r := rng.Intn(100)
		switch {
		case r < 5:
			// Advance virtual time by 1..30 hours: crosses HR=12
			// boundaries often enough that the Timer trigger both arms
			// and fires.
			sc.Steps = append(sc.Steps, Step{Kind: StepAdvance,
				Advance: time.Duration(1+rng.Intn(30)) * time.Hour})
		case r < 8 && cfg.Persistent:
			sc.Steps = append(sc.Steps, Step{Kind: StepCheckpoint})
		case r < 11 && cfg.Egress:
			// Crash or resume the egress consumer mid-run; crashes stall
			// delivery until a resume (or the end-of-run drain) and force
			// a cursor-based restart with redelivery.
			op := Op{Kind: OpCrashDeliverer}
			if rng.Intn(2) == 0 {
				op = Op{Kind: OpResumeConsumer}
			}
			sc.Steps = append(sc.Steps, Step{Kind: StepTx, Ops: []Op{op}})
		case r < 16 && cfg.Faults:
			sc.Steps = append(sc.Steps, genFaultStep(rng, cfg))
		case r < 24:
			// Deliberate abort after real work: rollback of automaton
			// state, shadows and timers under load.
			sc.Steps = append(sc.Steps, Step{Kind: StepTx, Abort: true,
				Ops: genOps(sc, rng, slotClass, 1+rng.Intn(3), nil)})
		default:
			sc.Steps = append(sc.Steps, Step{Kind: StepTx,
				Ops: genOps(sc, rng, slotClass, 1+rng.Intn(4), &slotClass)})
		}
	}
	return sc
}

// triggerNames returns the activatable trigger names of class ci for
// this script (whole-view triggers are absent from persistent runs,
// generated triggers are appended).
func triggerPool(sc *Script, ci int) []schema.Trigger {
	cd := &classDefs[ci]
	var out []schema.Trigger
	for _, tr := range cd.triggers {
		if tr.View == schema.WholeView && sc.Persistent {
			continue
		}
		out = append(out, tr)
	}
	if ci < len(sc.RandTriggers) {
		for _, rt := range sc.RandTriggers[ci] {
			out = append(out, schema.Trigger{Name: rt.Name, Event: rt.Event})
		}
	}
	return out
}

// activateAll emits activations for every trigger of class ci,
// choosing activation parameters where the trigger takes them.
func activateAll(sc *Script, rng *rand.Rand, slot, ci int) []Op {
	var ops []Op
	for _, tr := range triggerPool(sc, ci) {
		op := Op{Kind: OpActivate, Obj: slot, Trigger: tr.Name}
		for range tr.Params {
			op.Params = append(op.Params, int64(25+rng.Intn(400)))
		}
		ops = append(ops, op)
	}
	return ops
}

// genOps emits n transaction operations over the known slots. When
// grow is non-nil the transaction may create objects (appending their
// slots) and delete non-reserved ones.
func genOps(sc *Script, rng *rand.Rand, slotClass []int, n int, grow *[]int) []Op {
	var ops []Op
	slots := slotClass
	for i := 0; i < n; i++ {
		r := rng.Intn(100)
		slot := rng.Intn(len(slots))
		ci := slots[slot]
		cd := &classDefs[ci]
		switch {
		case grow != nil && r < 5:
			nci := rng.Intn(len(classDefs))
			ns := len(*grow)
			*grow = append(*grow, nci)
			slots = *grow
			ops = append(ops, Op{Kind: OpNew, Obj: ns, Class: nci})
			ops = append(ops, activateAll(sc, rng, ns, nci)...)
		case grow != nil && r < 8 && slot >= len(classDefs):
			ops = append(ops, Op{Kind: OpDelete, Obj: slot})
		case r < 14:
			pool := triggerPool(sc, ci)
			tr := pool[rng.Intn(len(pool))]
			op := Op{Kind: OpActivate, Obj: slot, Trigger: tr.Name}
			for range tr.Params {
				op.Params = append(op.Params, int64(25+rng.Intn(400)))
			}
			ops = append(ops, op)
		case r < 18:
			pool := triggerPool(sc, ci)
			tr := pool[rng.Intn(len(pool))]
			ops = append(ops, Op{Kind: OpDeactivate, Obj: slot, Trigger: tr.Name})
		case r < 21:
			// (Re)arm the class's timer-bearing triggers: cohort joins on
			// live cohorts, idempotent re-joins, and re-activation of fired
			// one-shots, interleaved with the deactivations above.
			ops = append(ops, Op{Kind: OpArmTimers, Obj: slot})
		case r < 28:
			// Batched method run over the class's known slots — the
			// engine's PostBatch hot path under the same oracle and model
			// checks as singles. Slots that are dead at execution time are
			// skipped by the executor, like OpCall.
			var members []int
			for s, c := range slots {
				if c == ci {
					members = append(members, s)
				}
			}
			n := 2 + rng.Intn(7)
			batch := make([]BatchCall, 0, n)
			for j := 0; j < n; j++ {
				m := cd.methods[rng.Intn(len(cd.methods))]
				e := BatchCall{Obj: members[rng.Intn(len(members))], Method: m.Name}
				if len(m.Params) > 0 {
					e.HasArg = true
					e.Arg = int64(rng.Intn(250))
					if rng.Intn(10) == 0 {
						e.Arg = int64(800 + rng.Intn(400)) // trip AbortBig mid-batch
					}
				}
				batch = append(batch, e)
			}
			ops = append(ops, Op{Kind: OpBatch, Class: ci, Batch: batch})
		default:
			m := cd.methods[rng.Intn(len(cd.methods))]
			op := Op{Kind: OpCall, Obj: slot, Method: m.Name}
			if len(m.Params) > 0 {
				op.HasArg = true
				op.Arg = int64(rng.Intn(250))
				// Occasionally large enough to trip the AbortBig tabort
				// trigger (wdr(n) && n > 900).
				if rng.Intn(10) == 0 {
					op.Arg = int64(800 + rng.Intn(400))
				}
			}
			ops = append(ops, op)
		}
	}
	return ops
}

// genFaultStep picks a fault point and a victim transaction. The
// victim always updates reserved slot 0 (class acct, never deleted)
// so its commit is guaranteed to consult the WAL.
func genFaultStep(rng *rand.Rand, cfg Config) Step {
	victim := []Op{{Kind: OpCall, Obj: 0, Method: "dep", HasArg: true, Arg: int64(1 + rng.Intn(200))}}
	if !cfg.Persistent {
		return Step{Kind: StepFault, Ops: victim,
			Fault: FaultSpec{Point: fault.LockAcquire, Tear: -1, Delay: uint64(rng.Intn(5))}}
	}
	// Egress victims withdraw >50 so the perpetual Masked trigger fires
	// and the commit is guaranteed to carry a feed record (staying
	// below AbortBig's n > 900 threshold).
	fireVictim := []Op{{Kind: OpCall, Obj: 0, Method: "wdr", HasArg: true, Arg: int64(60 + rng.Intn(700))}}
	points := 6
	if cfg.Egress {
		points = 9
	}
	switch rng.Intn(points) {
	case 0:
		// Crash before anything reaches the log.
		return Step{Kind: StepFault, Ops: victim, Fault: FaultSpec{Point: fault.WALWrite, Tear: -1}}
	case 1:
		// Torn batch: a short prefix makes it to disk.
		return Step{Kind: StepFault, Ops: victim,
			Fault: FaultSpec{Point: fault.WALWrite, Tear: 1 + rng.Intn(64)}}
	case 2:
		return Step{Kind: StepFault, Ops: victim, Fault: FaultSpec{Point: fault.WALSync, Tear: -1}}
	case 3:
		// Crash after durability but before the commit is acknowledged.
		return Step{Kind: StepFault, Ops: victim, Fault: FaultSpec{Point: fault.WALAfterSync, Tear: -1}}
	case 4:
		// Crash mid-batch-WAL-frame: the victim is a PostBatch whose
		// commit (two dirty acct objects when the script created them)
		// logs one multi-record opPutN frame, and the write tears partway
		// through it. Recovery must drop the torn frame whole — the
		// record set is all-or-nothing, never a prefix.
		n := 2 + rng.Intn(4)
		maxSlot := 0
		if cfg.Objects >= 2 {
			maxSlot = 1 // slots 0 and 1 are both class acct and reserved
		}
		batch := make([]BatchCall, 0, n)
		for j := 0; j < n; j++ {
			batch = append(batch, BatchCall{Obj: rng.Intn(maxSlot + 1), Method: "dep",
				HasArg: true, Arg: int64(1 + rng.Intn(200))})
		}
		if maxSlot == 1 {
			batch[0].Obj, batch[1].Obj = 0, 1 // guarantee a multi-record commit
		}
		return Step{Kind: StepFault,
			Ops:   []Op{{Kind: OpBatch, Class: classAcct, Batch: batch}},
			Fault: FaultSpec{Point: fault.WALWrite, Tear: 1 + rng.Intn(256)}}
	case 6:
		// Egress append fails before the WAL sees anything: simulated
		// crash, recovery must land pre with no feed extras.
		return Step{Kind: StepFault, Ops: fireVictim,
			Fault: FaultSpec{Point: fault.EgressAppend, Tear: -1}}
	case 7:
		// Cursor save fails (or tears); delivery proceeds and a later
		// restart redelivers from the last intact entry.
		tear := -1
		if rng.Intn(2) == 0 {
			tear = 1 + rng.Intn(10)
		}
		return Step{Kind: StepFault, Ops: fireVictim,
			Fault: FaultSpec{Point: fault.EgressCursor, Tear: tear}}
	case 8:
		// Endpoint rejects 1+Delay consecutive sends: retries inside the
		// pass, or a bounded-retry stall retried by a later pump.
		return Step{Kind: StepFault, Ops: fireVictim,
			Fault: FaultSpec{Point: fault.EgressDeliver, Tear: -1, Delay: uint64(rng.Intn(6))}}
	default:
		return Step{Kind: StepFault, Ops: victim,
			Fault: FaultSpec{Point: fault.LockAcquire, Tear: -1, Delay: uint64(rng.Intn(5))}}
	}
}
