package sim

import (
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"ode/internal/egress"
	"ode/internal/fault"
	"ode/internal/store"
)

// The egress side of the harness (Script.Egress): alongside the engine
// the executor runs a cursor-backed Deliverer whose Sender is a ledger
// receiver — a model of an idempotent downstream system that applies
// each firing's effect exactly once, keyed by the idempotency key.
// Deliveries are pumped deterministically after every step; faults at
// EgressAppend, EgressCursor and EgressDeliver, simulated engine
// crashes and scripted deliverer crashes (OpCrashDeliverer /
// OpResumeConsumer) perturb the pipeline, and the end-of-run oracle
// requires the ledger to hold exactly one effect per record of the
// final durable feed — no duplicates, no losses, no phantoms — with
// every redelivery absorbed by the key dedupe.

// recFingerprint is the receiver-side identity of a record's content.
// Two deliveries under the same idempotency key must carry identical
// fingerprints; anything else is a key collision and fails the run.
func recFingerprint(rec store.FiringRecord) string {
	return fmt.Sprintf("p%d/s%d %s.%s@%d %s tx=%d at=%d",
		rec.Part, rec.Seq, rec.Class, rec.Trigger, rec.OID, rec.Kind, rec.TxID, rec.AtNs)
}

// receive is the ledger receiver: the Sender behind the simulated
// deliverer. First delivery of a key applies the effect; redeliveries
// with identical content are absorbed (counted); diverging content
// under one key is recorded as a collision failure.
func (x *exec) receive(rec store.FiringRecord, key string) error {
	fp := recFingerprint(rec)
	if old, ok := x.effects[key]; ok {
		if old != fp && x.egressErr == nil {
			x.egressErr = fmt.Errorf("idempotency-key collision: %s maps to %q and %q", key, old, fp)
		}
		x.redelivered++
		return nil
	}
	x.effects[key] = fp
	return nil
}

// openDeliverer builds a deliverer over the current engine
// incarnation. Persistent scripts resume from the durable cursor file
// (shared across incarnations, like the store directory); volatile
// ones restart from the beginning of the feed and rely on the ledger
// dedupe.
func (x *exec) openDeliverer() error {
	if x.effects == nil {
		x.effects = map[string]string{}
	}
	var cur *egress.Cursor
	if x.sc.Persistent {
		c, err := egress.OpenCursor(filepath.Join(x.dir, "sim-cursor"), x.reg)
		if err != nil {
			return err
		}
		cur = c
	}
	x.delvCursor = cur
	x.delv = egress.NewDeliverer(x.eng, egress.SenderFunc(x.receive), egress.DelivererOptions{
		Cursor: cur,
		Sleep:  func(time.Duration) {}, // virtual backoff: keep runs deterministic
		Faults: x.reg,
	})
	return nil
}

// teardownDeliverer folds the current deliverer's counters into the
// run totals and drops it (the cursor file handle is closed; durable
// cursor state persists). Safe to call repeatedly.
func (x *exec) teardownDeliverer() {
	if x.delv != nil {
		s := x.delv.Stats()
		x.delivered += s.Delivered
		x.gaveUp += s.GaveUp
		x.cursorSaves += s.CursorSaves
		x.cursorErrs += s.CursorErrs
		x.delv = nil
	}
	if x.delvCursor != nil {
		x.delvCursor.Close()
		x.delvCursor = nil
	}
}

// crashDeliverer models the consumer process dying (OpCrashDeliverer):
// no graceful shutdown, in-memory position lost, durable cursor kept.
func (x *exec) crashDeliverer() {
	if !x.sc.Egress || x.delv == nil {
		return
	}
	x.teardownDeliverer()
	x.delvCrashes++
}

// resumeConsumer restarts a crashed deliverer from its durable cursor
// (OpResumeConsumer); running deliverers are left alone.
func (x *exec) resumeConsumer() error {
	if !x.sc.Egress || x.delv != nil {
		return nil
	}
	if err := x.openDeliverer(); err != nil {
		return fmt.Errorf("resume consumer: %w", err)
	}
	x.delvResumes++
	return nil
}

// pollFeed extends the harness's mirror of the durable feed with
// everything newly published. The mirror is the reference for the
// crash-recovery prefix contract (feedRecoveryErr) and the end-of-run
// ledger check.
func (x *exec) pollFeed() {
	if !x.sc.Egress {
		return
	}
	var after uint64
	if n := len(x.feedSeen); n > 0 {
		after = x.feedSeen[n-1].Seq
	}
	recs, _ := x.eng.Firings(after, 0)
	x.feedSeen = append(x.feedSeen, recs...)
}

// pumpEgress runs after every script step: refresh the feed mirror,
// then drain the deliverer to the head. A delivery pass that exhausts
// its bounded retries on an injected fault stalls (the record stays
// next in line and a later pump retries it); any other delivery error,
// and any receiver-side collision, fails the run.
func (x *exec) pumpEgress() error {
	if !x.sc.Egress {
		return nil
	}
	x.pollFeed()
	if x.delv != nil {
		if _, err := x.delv.Pump(0); err != nil && !errors.Is(err, fault.ErrInjected) {
			return fmt.Errorf("egress pump: %w", err)
		}
	}
	return x.egressErr
}

// feedRecoveryErr checks the recovered feed against the harness mirror
// after a simulated engine crash:
//
//	(A) prefix stability — every record observed on the feed before the
//	    crash must be present, bit-identical, at the same position;
//	(B) extras appear only at the tail, only when recovery landed on
//	    the committed side (post), and only from the victim
//	    transaction; an EgressAppend fault fires before anything
//	    reaches the WAL, so it never adds records.
//
// On success the mirror adopts the recovered feed (tail extras are
// durable commits the crash hid from the live engine).
func (x *exec) feedRecoveryErr(fe *fault.Error, post bool, victimTx uint64) error {
	recovered, _ := x.eng.Firings(0, 0)
	if len(recovered) < len(x.feedSeen) {
		return fmt.Errorf("recovery lost egress records: feed holds %d, %d were observed (fault %v)",
			len(recovered), len(x.feedSeen), fe)
	}
	for i, want := range x.feedSeen {
		if recovered[i] != want {
			return fmt.Errorf("recovered feed diverged at index %d: got %+v, observed %+v (fault %v)",
				i, recovered[i], want, fe)
		}
	}
	extras := recovered[len(x.feedSeen):]
	switch {
	case fe.Point == fault.EgressAppend && len(extras) > 0:
		return fmt.Errorf("crash at egress append surfaced %d feed records", len(extras))
	case !post && len(extras) > 0:
		return fmt.Errorf("pre-state recovery surfaced %d feed records (fault %v)", len(extras), fe)
	default:
		for _, r := range extras {
			if r.TxID != victimTx {
				return fmt.Errorf("recovered feed extra at seq %d is from tx %d, victim was tx %d (fault %v)",
					r.Seq, r.TxID, victimTx, fe)
			}
		}
	}
	x.feedSeen = recovered
	return nil
}

// egressFinalErr is the end-of-run exactly-once oracle. It disarms any
// leftover fault plans, resumes a crashed consumer, drains the feed,
// and then requires the ledger to hold exactly one effect per record
// of the final durable feed — matching content, no duplicate keys on
// the feed, no phantom effects off it — with the deliverer fully
// caught up.
func (x *exec) egressFinalErr() error {
	if !x.sc.Egress {
		return nil
	}
	x.reg.Disarm()
	if x.delv == nil {
		if err := x.resumeConsumer(); err != nil {
			return err
		}
	}
	x.pollFeed()
	if _, err := x.delv.Pump(0); err != nil {
		return fmt.Errorf("final egress drain: %w", err)
	}
	if x.egressErr != nil {
		return x.egressErr
	}
	if lag := x.delv.Stats().Lag; lag != 0 {
		return fmt.Errorf("deliverer still lags %d positions after the final drain", lag)
	}
	final, head := x.eng.Firings(0, 0)
	if len(final) != len(x.feedSeen) {
		return fmt.Errorf("feed mirror drift: observed %d records, final feed holds %d (head %d)",
			len(x.feedSeen), len(final), head)
	}
	if s := x.eng.Stats(); s.EgressSeq != head {
		return fmt.Errorf("stats gauge EgressSeq=%d disagrees with feed head %d", s.EgressSeq, head)
	}
	keys := make(map[string]bool, len(final))
	for _, rec := range final {
		key := egress.KeyFor(rec)
		if keys[key] {
			return fmt.Errorf("final feed carries duplicate idempotency key %s (seq %d)", key, rec.Seq)
		}
		keys[key] = true
		fp, ok := x.effects[key]
		if !ok {
			return fmt.Errorf("lost effect: feed seq %d (%s.%s@%d) was never applied",
				rec.Seq, rec.Class, rec.Trigger, rec.OID)
		}
		if fp != recFingerprint(rec) {
			return fmt.Errorf("effect drift at seq %d: applied %q, feed holds %q",
				rec.Seq, fp, recFingerprint(rec))
		}
	}
	for key, fp := range x.effects {
		if !keys[key] {
			return fmt.Errorf("phantom effect %s (%s) is not on the final feed", key, fp)
		}
	}
	return nil
}
