// Package sim is a seeded, fully deterministic simulation harness for
// the trigger engine. One run is: generate a script from a seed
// (multi-class workload plus scheduled fault injections), execute it
// against a real engine under a virtual clock, and check three
// oracles throughout:
//
//   - the §4 denotational semantics: every automaton transition is
//     cross-checked at posting time (engine.Options.ShadowOracle) and
//     every recorded instance history is replayed against
//     algebra.FiringPoints at the end of the run and after every
//     simulated crash (engine.VerifyOracle);
//   - a ledger model of object state: committed effects must be
//     exactly present, aborted and crashed-away effects exactly absent,
//     and recovery must be atomic per transaction;
//   - crash-recovery contracts per fault point: a commit acknowledged
//     (or synced) before the crash must survive; a batch that never
//     reached the log must leave no trace; a torn tail must be
//     detected and repaired, never silently extended.
//
// Determinism: all randomness is consumed by Generate; execution is
// single-goroutine; the clock is virtual. Executing the same script
// twice yields bit-identical firing logs, stats and fingerprints,
// which is what makes a printed seed a complete bug report. On
// failure the harness emits the seed plus a minimized reproduction
// script (Minimize).
package sim

import (
	"errors"
	"fmt"
	"os"
)

// ExecuteTemp executes sc, provisioning (and removing) a scratch
// store directory under base when the script is persistent. An empty
// base means the system temp directory.
func ExecuteTemp(sc *Script, base string) (*Result, error) {
	dir := ""
	if sc.Persistent {
		d, err := os.MkdirTemp(base, "odesim-*")
		if err != nil {
			return nil, fmt.Errorf("sim: scratch dir: %w", err)
		}
		defer os.RemoveAll(d)
		dir = d
	}
	return Execute(sc, dir)
}

// Run generates the script for cfg and executes it. On failure, if
// minimize is set, the script is shrunk while it still fails and the
// returned *Failure carries the minimized reproduction.
func Run(cfg Config, base string, minimize bool) (*Result, error) {
	sc := Generate(cfg)
	res, err := ExecuteTemp(sc, base)
	if err == nil || !minimize {
		return res, err
	}
	var f *Failure
	if !errors.As(err, &f) {
		return nil, err
	}
	min := Minimize(sc, func(c *Script) bool {
		_, e := ExecuteTemp(c, base)
		return e != nil
	}, 200)
	if _, e := ExecuteTemp(min, base); e != nil {
		var mf *Failure
		if errors.As(e, &mf) {
			return nil, mf
		}
	}
	return nil, err
}

// CheckFunc reports whether a candidate script still reproduces the
// failure under investigation.
type CheckFunc func(*Script) bool

// Minimize greedily shrinks a failing script while stillFails keeps
// returning true, bounded by budget re-executions: first whole steps
// (coarse chunks down to single steps), then individual ops inside
// the surviving transactions. The result is not guaranteed minimal —
// it is a small, still-failing reproduction.
func Minimize(sc *Script, stillFails CheckFunc, budget int) *Script {
	cur := cloneScript(sc)
	tries := 0
	spend := func(c *Script) bool {
		if tries >= budget {
			return false
		}
		tries++
		return stillFails(c)
	}

	// Pass 1: drop step chunks, halving the chunk size.
	for size := len(cur.Steps) / 2; size >= 1; size /= 2 {
		for at := 0; at+size <= len(cur.Steps); {
			cand := cloneScript(cur)
			cand.Steps = append(cand.Steps[:at:at], cand.Steps[at+size:]...)
			if spend(cand) {
				cur = cand
				continue // same at, shorter script
			}
			at++
		}
	}

	// Pass 2: drop single ops, scanning backwards so indexes stay valid.
	for si := len(cur.Steps) - 1; si >= 0; si-- {
		for oi := len(cur.Steps[si].Ops) - 1; oi >= 0; oi-- {
			cand := cloneScript(cur)
			ops := cand.Steps[si].Ops
			cand.Steps[si].Ops = append(ops[:oi:oi], ops[oi+1:]...)
			if spend(cand) {
				cur = cand
			}
		}
	}
	return cur
}

func cloneScript(sc *Script) *Script {
	c := *sc
	c.Steps = make([]Step, len(sc.Steps))
	copy(c.Steps, sc.Steps)
	return &c
}

// TortureOpts parameterizes a long randomized campaign.
type TortureOpts struct {
	Iters int
	Seed  int64  // first seed; iteration i runs Seed+i
	Cfg   Config // template; Seed is overridden per iteration
	Base  string // scratch-dir base ("" = system temp)
	// Minimize shrinks the script of each failure (costly; off for
	// quick smoke runs).
	Minimize bool
	// Progress, when set, is called after each iteration.
	Progress func(done, failures int)
	// MaxFailures stops the campaign early once reached (0 = collect
	// them all).
	MaxFailures int
}

// TortureSummary aggregates a campaign.
type TortureSummary struct {
	Iters       int
	Failures    int
	Crashes     int
	Recoveries  int
	TornTails   int
	Injected    uint64
	Firings     uint64
	Happenings  uint64
	FailedSeeds []int64
	// Egress aggregates (runs with Config.Egress): ledger effects
	// applied, dedupe-absorbed redeliveries, bounded-retry stalls, and
	// scripted deliverer crashes across the campaign.
	EgressEffects    uint64
	Redelivered      uint64
	GaveUp           uint64
	DelivererCrashes int
}

// Torture runs Iters independent seeded simulations and aggregates
// their outcomes. Every failure carries its seed and reproduction
// script.
func Torture(o TortureOpts) (TortureSummary, []*Failure) {
	sum := TortureSummary{}
	var fails []*Failure
	for i := 0; i < o.Iters; i++ {
		cfg := o.Cfg
		cfg.Seed = o.Seed + int64(i)
		sum.Iters++
		res, err := Run(cfg, o.Base, o.Minimize)
		if err != nil {
			sum.Failures++
			sum.FailedSeeds = append(sum.FailedSeeds, cfg.Seed)
			var f *Failure
			if errors.As(err, &f) {
				fails = append(fails, f)
			} else {
				fails = append(fails, &Failure{Seed: cfg.Seed, Err: err, Script: Generate(cfg)})
			}
			if o.MaxFailures > 0 && sum.Failures >= o.MaxFailures {
				break
			}
		} else {
			sum.Crashes += res.Crashes
			sum.Recoveries += res.Recoveries
			sum.TornTails += res.TornTails
			sum.Injected += res.InjectedFaults
			sum.Firings += res.Stats.Firings
			sum.Happenings += res.Stats.Happenings
			sum.EgressEffects += uint64(res.EgressEffects)
			sum.Redelivered += res.EgressRedelivered
			sum.GaveUp += res.EgressGaveUp
			sum.DelivererCrashes += res.DelivererCrashes
		}
		if o.Progress != nil {
			o.Progress(sum.Iters, sum.Failures)
		}
	}
	return sum, fails
}
