package sim

import (
	"fmt"

	"ode/internal/engine"
	"ode/internal/schema"
	"ode/internal/value"
)

// classDef is the static description of one simulated class: schema
// fields and methods, the fixed trigger pool, and the model-side
// effect of each method. The fixed pool deliberately spans the §3
// combinators the engine compiles — masks, sequence, relative, counting,
// fa-couplings over transaction events, activation parameters, tabort
// actions and virtual-time atoms — so every run exercises them; the
// generator adds random non-perpetual triggers on top (see gen.go for
// why random perpetual triggers are unsafe).
type classDef struct {
	name    string
	fields  []schema.Field
	methods []schema.Method
	// fixed triggers; whole-view entries are dropped in persistent runs
	// (whole-history automaton state is deliberately volatile, §6, so
	// its restart semantics are not part of the crash contract).
	triggers []schema.Trigger
	// apply mutates the model fields exactly as the engine method does.
	apply func(fields map[string]int64, method string, arg int64)
}

const (
	classAcct = 0
	classMtr  = 1
)

var classDefs = []classDef{
	{
		name: "acct",
		fields: []schema.Field{
			{Name: "bal", Kind: value.KindInt, Default: value.Int(1000)},
		},
		methods: []schema.Method{
			{Name: "dep", Params: []schema.Param{{Name: "n", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
			{Name: "wdr", Params: []schema.Param{{Name: "n", Kind: value.KindInt}}, Mode: schema.ModeUpdate},
			{Name: "png", Mode: schema.ModeRead},
		},
		triggers: []schema.Trigger{
			{Name: "Masked", Perpetual: true, Event: "after wdr(n) && n > 50"},
			{Name: "Seq", Perpetual: true, Event: "after dep; after wdr"},
			{Name: "Rel", Perpetual: true, Event: "relative(after dep, after wdr(n) && n > 50)"},
			{Name: "Cnt", Perpetual: true, Event: "every 3 (after access)"},
			{Name: "Chz", Event: "choose 4 (after dep)"},
			{Name: "Neg", Perpetual: true, Event: "!(after png | after tbegin) & after access"},
			{Name: "FaW", Perpetual: true, Event: "fa(after tbegin, after wdr, after png)"},
			{Name: "Deep", Perpetual: true, Event: "fa(relative(after dep, after dep), before tcomplete, after tbegin)"},
			{Name: "Lim", Perpetual: true, Event: "after dep(n) && n > lim",
				Params: []schema.Param{{Name: "lim", Kind: value.KindInt}}},
			{Name: "AbortBig", Perpetual: true, Event: "after wdr(n) && n > 900"},
			{Name: "Timer", Perpetual: true, Event: "relative(at time(HR=12), after wdr)"},
			{Name: "Beat", Perpetual: true, Event: "every time(M=30)"},
			{Name: "Whole", Perpetual: true, Event: "relative(after tabort, after tbegin)", View: schema.WholeView},
		},
		apply: func(f map[string]int64, method string, arg int64) {
			switch method {
			case "dep":
				f["bal"] += arg
			case "wdr":
				f["bal"] -= arg
			}
		},
	},
	{
		name: "mtr",
		fields: []schema.Field{
			{Name: "v", Kind: value.KindInt, Default: value.Int(0)},
			{Name: "sum", Kind: value.KindInt, Default: value.Int(0)},
		},
		methods: []schema.Method{
			{Name: "bump", Mode: schema.ModeUpdate},
			{Name: "scan", Mode: schema.ModeRead},
		},
		triggers: []schema.Trigger{
			{Name: "Tick", Perpetual: true, Event: "every 2 (after bump)"},
			{Name: "Pair", Perpetual: true, Event: "after bump; after scan"},
			{Name: "Prio", Perpetual: true, Event: "prior(after bump, after scan)"},
			{Name: "Poll", Perpetual: true, Event: "every time(HR=2)"},
			{Name: "Warm", Event: "after time(M=45)"},
		},
		apply: func(f map[string]int64, method string, arg int64) {
			if method == "bump" {
				f["v"]++
				f["sum"] += f["v"]
			}
		},
	},
}

// timerTrigNames lists, per class index, the fixed triggers whose
// event specs carry timer atoms — the set OpArmTimers (re)activates.
// Must stay in sync with classDefs: acct carries a calendar 'at' (via
// relative) and a periodic 'every'; mtr a coarser 'every' plus an
// 'after' one-shot, so scripts grow both cohorts and one-shots.
var timerTrigNames = [][]string{
	{"Timer", "Beat"},
	{"Poll", "Warm"},
}

// newFields returns the model's initial field values for a class,
// mirroring schema defaults.
func (cd *classDef) newFields() map[string]int64 {
	out := make(map[string]int64, len(cd.fields))
	for _, f := range cd.fields {
		out[f.Name] = f.Default.AsInt()
	}
	return out
}

func (cd *classDef) trigger(name string) *schema.Trigger {
	for i := range cd.triggers {
		if cd.triggers[i].Name == name {
			return &cd.triggers[i]
		}
	}
	return nil
}

// buildClass materializes a fresh schema.Class and impl for one
// incarnation of the engine. fire is the harness's firing recorder;
// the AbortBig action additionally raises tabort, exercising
// action-driven aborts under the oracle.
func buildClass(ci int, sc *Script, fire func(class, trigger string, ctx *engine.ActionCtx)) (*schema.Class, engine.ClassImpl) {
	cd := &classDefs[ci]
	cls := &schema.Class{Name: cd.name}
	cls.Fields = append(cls.Fields, cd.fields...)
	cls.Methods = append(cls.Methods, cd.methods...)
	for _, tr := range cd.triggers {
		if tr.View == schema.WholeView && sc.Persistent {
			continue
		}
		cls.Triggers = append(cls.Triggers, tr)
	}
	if ci < len(sc.RandTriggers) {
		for _, rt := range sc.RandTriggers[ci] {
			cls.Triggers = append(cls.Triggers, schema.Trigger{Name: rt.Name, Event: rt.Event})
		}
	}

	impl := engine.ClassImpl{
		Methods: map[string]engine.MethodImpl{},
		Actions: map[string]engine.ActionFunc{},
	}
	switch ci {
	case classAcct:
		// Get can fail mid-method when an injected lock fault lands on
		// the access; every impl must surface that, not swallow it.
		impl.Methods["dep"] = func(ctx *engine.MethodCtx) (value.Value, error) {
			b, err := ctx.Get("bal")
			if err != nil {
				return value.Null(), err
			}
			return value.Null(), ctx.Set("bal", value.Int(b.AsInt()+ctx.Arg("n").AsInt()))
		}
		impl.Methods["wdr"] = func(ctx *engine.MethodCtx) (value.Value, error) {
			b, err := ctx.Get("bal")
			if err != nil {
				return value.Null(), err
			}
			return value.Null(), ctx.Set("bal", value.Int(b.AsInt()-ctx.Arg("n").AsInt()))
		}
		impl.Methods["png"] = func(ctx *engine.MethodCtx) (value.Value, error) {
			return ctx.Get("bal")
		}
	case classMtr:
		impl.Methods["bump"] = func(ctx *engine.MethodCtx) (value.Value, error) {
			v, err := ctx.Get("v")
			if err != nil {
				return value.Null(), err
			}
			if err := ctx.Set("v", value.Int(v.AsInt()+1)); err != nil {
				return value.Null(), err
			}
			s, err := ctx.Get("sum")
			if err != nil {
				return value.Null(), err
			}
			return value.Null(), ctx.Set("sum", value.Int(s.AsInt()+v.AsInt()+1))
		}
		impl.Methods["scan"] = func(ctx *engine.MethodCtx) (value.Value, error) {
			return ctx.Get("sum")
		}
	default:
		panic(fmt.Sprintf("sim: unknown class index %d", ci))
	}

	name := cd.name
	for _, tr := range cls.Triggers {
		trName := tr.Name
		if trName == "AbortBig" {
			impl.Actions[trName] = func(ctx *engine.ActionCtx) error {
				fire(name, trName, ctx)
				return ctx.Tabort()
			}
			continue
		}
		impl.Actions[trName] = func(ctx *engine.ActionCtx) error {
			fire(name, trName, ctx)
			return nil
		}
	}
	return cls, impl
}
