package sim

import (
	"math/rand"
	"testing"
	"time"

	"ode/internal/fault"
)

// handScript builds a script with the standard init transaction (one
// object per class, all triggers activated) followed by the given
// steps. Slot 0 is an acct, slot 1 a mtr.
func handScript(persistent bool, steps ...Step) *Script {
	sc := &Script{Seed: 1, Persistent: persistent,
		RandTriggers: make([][]RandTrigger, len(classDefs))}
	rng := rand.New(rand.NewSource(1))
	var init []Op
	for ci := range classDefs {
		init = append(init, Op{Kind: OpNew, Obj: ci, Class: ci})
		init = append(init, activateAll(sc, rng, ci, ci)...)
	}
	sc.Steps = append(sc.Steps, Step{Kind: StepTx, Ops: init})
	sc.Steps = append(sc.Steps, steps...)
	return sc
}

func dep(slot int, n int64) Op {
	return Op{Kind: OpCall, Obj: slot, Method: "dep", HasArg: true, Arg: n}
}

func wdr(slot int, n int64) Op {
	return Op{Kind: OpCall, Obj: slot, Method: "wdr", HasArg: true, Arg: n}
}

// TestSimShort is the CI smoke: a handful of seeds through every
// mode — volatile, persistent, persistent with fault injection —
// within a small budget. This is the entry point the sim-short CI job
// runs under -race.
func TestSimShort(t *testing.T) {
	base := t.TempDir()
	for seed := int64(1); seed <= 4; seed++ {
		cfg := Defaults(seed)
		if _, err := Run(cfg, base, true); err != nil {
			t.Fatalf("volatile seed %d: %v", seed, err)
		}
		cfg = Defaults(seed)
		cfg.Persistent = true
		cfg.Faults = true
		res, err := Run(cfg, base, true)
		if err != nil {
			t.Fatalf("persistent seed %d: %v", seed, err)
		}
		if res.Stats.Firings == 0 {
			t.Errorf("seed %d: no trigger fired — workload too weak to test anything", seed)
		}
		if res.Stats.ShadowChecks == 0 {
			t.Errorf("seed %d: shadow oracle never consulted", seed)
		}
	}
}

// TestSimDeterminism executes the same generated script twice and
// requires bit-identical fingerprints (firing log, final state, stats
// and canonical metrics), in both volatile and crashing-persistent
// modes.
func TestSimDeterminism(t *testing.T) {
	for _, mode := range []struct {
		name       string
		persistent bool
		faults     bool
	}{
		{"volatile", false, false},
		{"persistent-faults", true, true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := Defaults(99)
			cfg.Steps = 60
			cfg.Persistent = mode.persistent
			cfg.Faults = mode.faults
			sc := Generate(cfg)
			a, err := ExecuteTemp(sc, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			b, err := ExecuteTemp(sc, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if a.Fingerprint != b.Fingerprint {
				t.Fatalf("same seed, different runs:\n a=%s (%d firings, %d crashes)\n b=%s (%d firings, %d crashes)",
					a.Fingerprint, len(a.Firings), a.Crashes, b.Fingerprint, len(b.Firings), b.Crashes)
			}
			if mode.faults && a.Crashes == 0 {
				t.Error("fault mode never crashed; determinism check is vacuous")
			}
		})
	}
}

// TestSimOracleSeeds replays the engine against the §4 denotational
// semantics across many randomized seeds: every posting is
// shadow-checked and every instance history is replayed through
// algebra.FiringPoints at the end of each run.
func TestSimOracleSeeds(t *testing.T) {
	seeds := 1000
	if testing.Short() {
		seeds = 150
	}
	var checks, firings uint64
	for seed := 0; seed < seeds; seed++ {
		cfg := Config{Seed: int64(seed), Steps: 10, Objects: 1, RandTriggers: 2, Depth: 2}
		res, err := Run(cfg, "", false)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checks += res.Stats.ShadowChecks
		firings += res.Stats.Firings
	}
	if checks == 0 || firings == 0 {
		t.Fatalf("oracle sweep was vacuous: %d shadow checks, %d firings", checks, firings)
	}
	t.Logf("%d seeds: %d shadow checks, %d firings", seeds, checks, firings)
}

// --- per-fault-class tests -------------------------------------------------
//
// Each arms exactly one fault class through a handcrafted script and
// requires the harness's recovery contract for it to hold (the
// executor itself asserts PRE/POST atomicity; the tests pin that the
// fault actually fired and the recovery cycle ran).

func runFaultScript(t *testing.T, sc *Script) *Result {
	t.Helper()
	res, err := ExecuteTemp(sc, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFaultCrashBeforeCommit: the batch never reaches the log; after
// the simulated crash the victim transaction must have vanished
// without a trace.
func TestFaultCrashBeforeCommit(t *testing.T) {
	sc := handScript(true,
		Step{Kind: StepTx, Ops: []Op{dep(0, 100)}},
		Step{Kind: StepFault, Ops: []Op{dep(0, 7)}, Fault: FaultSpec{Point: fault.WALWrite, Tear: -1}},
		Step{Kind: StepTx, Ops: []Op{wdr(0, 30)}},
	)
	res := runFaultScript(t, sc)
	if res.Crashes != 1 || res.Recoveries != 1 {
		t.Fatalf("want 1 crash+recovery, got %d/%d", res.Crashes, res.Recoveries)
	}
	if res.InjectedFaults != 1 {
		t.Fatalf("want exactly 1 injected fault, got %d", res.InjectedFaults)
	}
}

// TestFaultTornWrite: a prefix of the batch reaches the log; recovery
// must detect the torn tail, repair the file, and drop the
// transaction atomically.
func TestFaultTornWrite(t *testing.T) {
	sc := handScript(true,
		Step{Kind: StepTx, Ops: []Op{dep(0, 100)}},
		Step{Kind: StepFault, Ops: []Op{dep(0, 7)}, Fault: FaultSpec{Point: fault.WALWrite, Tear: 9}},
		Step{Kind: StepTx, Ops: []Op{wdr(0, 30)}},
		Step{Kind: StepTx, Ops: []Op{dep(0, 11)}},
	)
	res := runFaultScript(t, sc)
	if res.Crashes != 1 {
		t.Fatalf("want 1 crash, got %d", res.Crashes)
	}
	if res.TornTails != 1 {
		t.Fatalf("want a detected torn tail, got %d", res.TornTails)
	}
}

// TestFaultSyncError: the sync call fails after the bytes were
// written; recovery must land on exactly one side of the commit,
// atomically (in-process simulation makes that the committed side,
// but the contract checked is atomicity).
func TestFaultSyncError(t *testing.T) {
	sc := handScript(true,
		Step{Kind: StepTx, Ops: []Op{dep(0, 100)}},
		Step{Kind: StepFault, Ops: []Op{dep(0, 7)}, Fault: FaultSpec{Point: fault.WALSync, Tear: -1}},
		Step{Kind: StepTx, Ops: []Op{wdr(0, 30)}},
	)
	res := runFaultScript(t, sc)
	if res.Crashes != 1 || res.InjectedFaults != 1 {
		t.Fatalf("want 1 crash from 1 injected sync failure, got %d/%d", res.Crashes, res.InjectedFaults)
	}
}

// TestFaultCrashAfterCommit: the batch is durable but the commit was
// never acknowledged; recovery must keep it (no lost updates behind a
// successful sync).
func TestFaultCrashAfterCommit(t *testing.T) {
	sc := handScript(true,
		Step{Kind: StepTx, Ops: []Op{dep(0, 100)}},
		Step{Kind: StepFault, Ops: []Op{dep(0, 7)}, Fault: FaultSpec{Point: fault.WALAfterSync, Tear: -1}},
		Step{Kind: StepTx, Ops: []Op{wdr(0, 30)}},
	)
	res := runFaultScript(t, sc)
	if res.Crashes != 1 {
		t.Fatalf("want 1 crash, got %d", res.Crashes)
	}
}

// TestFaultLockTimeout: a lock-acquire failure aborts the requesting
// transaction like a deadlock victim; the engine keeps running, no
// crash cycle, and the transaction's effects are absent.
func TestFaultLockTimeout(t *testing.T) {
	sc := handScript(false,
		Step{Kind: StepTx, Ops: []Op{dep(0, 100)}},
		Step{Kind: StepFault, Ops: []Op{dep(0, 7)}, Fault: FaultSpec{Point: fault.LockAcquire, Tear: -1}},
		Step{Kind: StepTx, Ops: []Op{wdr(0, 30)}},
	)
	res := runFaultScript(t, sc)
	if res.Crashes != 0 {
		t.Fatalf("lock fault must not crash, got %d crashes", res.Crashes)
	}
	if res.InjectedFaults != 1 {
		t.Fatalf("want 1 injected lock fault, got %d", res.InjectedFaults)
	}
}

// TestFaultStepsGenerated pins that generated fault campaigns
// actually exercise multiple distinct fault classes (guards against
// the generator silently dropping fault steps).
func TestFaultStepsGenerated(t *testing.T) {
	points := map[fault.Point]int{}
	for seed := int64(0); seed < 20; seed++ {
		cfg := Defaults(seed)
		cfg.Persistent = true
		cfg.Faults = true
		cfg.Steps = 60
		for _, st := range Generate(cfg).Steps {
			if st.Kind == StepFault {
				points[st.Fault.Point]++
			}
		}
	}
	if len(points) < 4 {
		t.Fatalf("generated campaigns cover only %d fault classes: %v", len(points), points)
	}
}

// TestMinimize checks the shrinker on a synthetic predicate: the
// "failure" is the presence of one particular op, and minimization
// must strip (nearly) everything else while keeping it.
func TestMinimize(t *testing.T) {
	cfg := Defaults(5)
	cfg.Steps = 40
	sc := Generate(cfg)
	needle := Step{Kind: StepTx, Ops: []Op{wdr(0, 777)}}
	sc.Steps = append(sc.Steps[:20:20], append([]Step{needle}, sc.Steps[20:]...)...)

	hasNeedle := func(c *Script) bool {
		for _, st := range c.Steps {
			for _, op := range st.Ops {
				if op.Kind == OpCall && op.Method == "wdr" && op.Arg == 777 {
					return true
				}
			}
		}
		return false
	}
	min := Minimize(sc, hasNeedle, 500)
	if !hasNeedle(min) {
		t.Fatal("minimizer dropped the failing op")
	}
	var ops int
	for _, st := range min.Steps {
		ops += len(st.Ops)
	}
	if len(min.Steps) > 2 || ops > 2 {
		t.Fatalf("minimizer left %d steps / %d ops:\n%s", len(min.Steps), ops, min.String())
	}
}

// TestScriptString smoke-tests the reproduction rendering.
func TestScriptString(t *testing.T) {
	cfg := Defaults(3)
	cfg.Persistent = true
	cfg.Faults = true
	s := Generate(cfg).String()
	if len(s) == 0 {
		t.Fatal("empty script rendering")
	}
}

// TestTortureSmoke runs a miniature campaign through the Torture
// entry point (the odebench -sim mode calls this).
func TestTortureSmoke(t *testing.T) {
	cfg := Defaults(0)
	cfg.Persistent = true
	cfg.Faults = true
	cfg.Steps = 20
	sum, fails := Torture(TortureOpts{Iters: 5, Seed: 300, Cfg: cfg, Base: t.TempDir()})
	for _, f := range fails {
		t.Errorf("seed %d: %v", f.Seed, f.Err)
	}
	if sum.Iters != 5 || sum.Failures != 0 {
		t.Fatalf("summary: %+v", sum)
	}
}

// TestSimFlightDump: every run counts its flight-recorder events (at
// least one per happening, across crash incarnations), and a Failure
// built mid-run carries the recorder's recent events — the pre-crash
// capture when one exists, the live engine's otherwise.
func TestSimFlightDump(t *testing.T) {
	cfg := Defaults(7)
	cfg.Persistent = true
	cfg.Faults = true
	cfg.Steps = 30
	sc := Generate(cfg)
	res, err := ExecuteTemp(sc, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FlightEvents < res.Stats.Happenings || res.Stats.FlightEvents == 0 {
		t.Fatalf("flight events %d < happenings %d", res.Stats.FlightEvents, res.Stats.Happenings)
	}

	x := &exec{sc: sc, dir: t.TempDir(), reg: fault.New()}
	if err := x.open(time.Time{}); err != nil {
		t.Fatal(err)
	}
	defer x.eng.Close()
	for i, st := range sc.Steps {
		if err := x.runStep(st); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	live := x.failFlight()
	if len(live) == 0 {
		t.Fatal("failure dump empty after a worked script")
	}
	// A saved pre-crash capture must win over the live recorder.
	x.flight = live[:1]
	if got := x.failFlight(); len(got) != 1 {
		t.Fatalf("pre-crash capture not preferred: got %d events", len(got))
	}
}
