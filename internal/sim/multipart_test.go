package sim

import (
	"testing"
)

// TestMultipartDeterministicReplay: executing the same multi-partition
// script twice yields bit-identical fingerprints — per-partition firing
// order, final ledger, crash counters and canonical metrics all match.
// This is the determinism claim for the partitioned engine: for a fixed
// schedule (scripts drain to quiescence at every cross-partition
// barrier) the firing order within each partition is a pure function of
// the script.
func TestMultipartDeterministicReplay(t *testing.T) {
	cfg := MultiDefaults(411)
	cfg.Steps = 60
	sc := GenerateMulti(cfg)
	a, err := ExecuteMultiTemp(sc, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExecuteMultiTemp(sc, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("same script, different fingerprints:\n  %s\n  %s\nscript:\n%s",
			a.Fingerprint, b.Fingerprint, sc.String())
	}
	// Non-vacuity: a different seed must not collide.
	cfg2 := cfg
	cfg2.Seed = 412
	c, err := ExecuteMultiTemp(GenerateMulti(cfg2), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint == a.Fingerprint {
		t.Fatal("different seeds produced identical fingerprints")
	}
	var total int
	for _, fs := range a.Firings {
		total += len(fs)
	}
	if total == 0 {
		t.Fatal("script produced no firings; determinism check is vacuous")
	}
}

// TestMultipartPersistentFaultedRuns sweeps seeds over persistent
// fault-injecting scripts: per-partition WAL faults (write, sync, torn
// tail) crash the whole process and every partition recovers
// independently from its own WAL, with the ledger, the §4 oracle replay
// and the ownership invariant checked after each recovery and at the
// end. The sweep must actually exercise crashes and torn tails or the
// contract is untested.
func TestMultipartPersistentFaultedRuns(t *testing.T) {
	var crashes, tornTails int
	var injected uint64
	for seed := int64(1); seed <= 8; seed++ {
		cfg := MultiDefaults(seed)
		cfg.Persistent = true
		cfg.Faults = true
		cfg.Steps = 45
		sc := GenerateMulti(cfg)
		res, err := ExecuteMultiTemp(sc, t.TempDir())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Crashes != res.Recoveries {
			t.Fatalf("seed %d: %d crashes but %d recoveries", seed, res.Crashes, res.Recoveries)
		}
		crashes += res.Crashes
		tornTails += res.TornTails
		injected += res.InjectedFaults
	}
	if crashes == 0 {
		t.Fatal("fault sweep never crashed; per-partition recovery is untested")
	}
	if tornTails == 0 {
		t.Fatal("fault sweep never tore a WAL tail; torn-tail recovery is untested")
	}
	if injected == 0 {
		t.Fatal("no faults injected across the sweep")
	}
	t.Logf("sweep: %d crashes, %d torn tails, %d injected faults", crashes, tornTails, injected)
}

// TestMultipartPersistentDeterminism: determinism holds through crash
// and per-partition recovery too — the whole faulted run (including the
// recovery reconciliations) replays to the same fingerprint.
func TestMultipartPersistentDeterminism(t *testing.T) {
	var sc *MultiScript
	for seed := int64(1); seed <= 16; seed++ {
		cfg := MultiDefaults(seed)
		cfg.Persistent = true
		cfg.Faults = true
		cfg.Steps = 40
		cand := GenerateMulti(cfg)
		res, err := ExecuteMultiTemp(cand, t.TempDir())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Crashes > 0 {
			sc = cand
			break
		}
	}
	if sc == nil {
		t.Fatal("no seed in 1..16 produced a crash")
	}
	a, err := ExecuteMultiTemp(sc, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExecuteMultiTemp(sc, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if a.Crashes == 0 {
		t.Fatal("chosen script stopped crashing on re-execution")
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("faulted run not deterministic:\n  %s\n  %s\nscript:\n%s",
			a.Fingerprint, b.Fingerprint, sc.String())
	}
}

// TestMultipartScriptRendering pins that scripts render a readable
// reproduction recipe mentioning partitions, relays and faults.
func TestMultipartScriptRendering(t *testing.T) {
	cfg := MultiDefaults(7)
	cfg.Persistent = true
	cfg.Faults = true
	cfg.Steps = 80
	s := GenerateMulti(cfg).String()
	for _, want := range []string{"partitions=3", "relay p", "fault p", "tx p"} {
		if !contains(s, want) {
			t.Fatalf("script rendering missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
