package sim

import (
	"fmt"
	"strings"
	"time"

	"ode/internal/fault"
)

// OpKind enumerates the operations a simulated transaction performs.
type OpKind uint8

const (
	OpCall OpKind = iota
	OpActivate
	OpDeactivate
	OpNew
	OpDelete
	// OpBatch posts a columnar run of method calls against objects of
	// one class through Tx.PostBatch — the engine's batch hot path.
	// Entries whose slot is dead are skipped, mirroring OpCall.
	OpBatch
	// OpArmTimers (re)activates every fixed trigger of the slot's class
	// whose event spec carries timer atoms, growing the class's timer
	// cohorts mid-run. Activation is idempotent, so re-arming an
	// already-armed instance keeps its original schedule (§3.1 sharing).
	OpArmTimers
	// OpCrashDeliverer simulates the egress consumer process dying:
	// the deliverer is dropped with no graceful shutdown, keeping only
	// what its durable cursor already holds. Deliveries stall until an
	// OpResumeConsumer (or the end-of-run drain) restarts it.
	OpCrashDeliverer
	// OpResumeConsumer restarts a crashed deliverer from its durable
	// cursor, redelivering anything past the last saved entry (the
	// ledger receiver's idempotency-key dedupe absorbs the overlap).
	// No-op while the deliverer is running.
	OpResumeConsumer
)

// BatchCall is one entry of an OpBatch.
type BatchCall struct {
	Obj    int
	Method string
	Arg    int64
	HasArg bool
}

// Op is one operation inside a simulated transaction. Objects are
// addressed by slot index into the harness's object table, never by
// OID: OIDs are allocated by the store at execution time and may be
// reused after a crash rolls an allocation back, so a script that
// named OIDs would not survive minimization or replay.
type Op struct {
	Kind    OpKind
	Obj     int    // object slot
	Class   int    // OpNew: class index
	Method  string // OpCall
	Arg     int64  // OpCall: integer argument
	HasArg  bool   // OpCall: whether Arg is passed
	Trigger string // OpActivate / OpDeactivate
	Params  []int64
	// Batch holds the entries of an OpBatch; Class names their class
	// (every entry of a batch addresses objects of one class).
	Batch []BatchCall
}

// StepKind enumerates the top-level script steps.
type StepKind uint8

const (
	// StepTx runs Ops in one transaction and commits (or aborts when
	// Abort is set).
	StepTx StepKind = iota
	// StepAdvance moves the virtual clock, delivering due timers.
	StepAdvance
	// StepCheckpoint snapshots the store and truncates the WAL.
	StepCheckpoint
	// StepFault arms a fault and then runs Ops as the victim
	// transaction. For WAL points the executor simulates a crash at the
	// injection and recovers; for LockAcquire the victim (or a later
	// consult, per Delay) simply fails.
	StepFault
)

// FaultSpec describes the fault a StepFault arms.
type FaultSpec struct {
	Point fault.Point
	// Tear, for WALWrite: >=0 writes only that byte prefix of the
	// batch; <0 writes nothing.
	Tear int
	// Delay, for LockAcquire: fire on the (1+Delay)-th consult after
	// arming, letting the fault land in a later transaction, a mask
	// evaluation, or a timer delivery. For EgressDeliver: fail the next
	// 1+Delay consecutive send attempts — Delay >= MaxAttempts-1 makes
	// the deliverer exhaust its retries and stall at the record.
	Delay uint64
}

// Step is one top-level action of a simulation script.
type Step struct {
	Kind    StepKind
	Ops     []Op
	Abort   bool          // StepTx: deliberately abort after Ops
	Advance time.Duration // StepAdvance
	Fault   FaultSpec     // StepFault
}

// RandTrigger is a generated trigger rendered into the script so the
// script alone reproduces the schema (the minimizer re-executes
// scripts in fresh engines).
type RandTrigger struct {
	Name  string
	Event string
}

// Script is a fully deterministic simulation input: executing the
// same script twice yields bit-identical firing logs and stats.
type Script struct {
	Seed       int64
	Persistent bool
	// Egress runs a durable-egress consumer alongside the script: a
	// ledger receiver fed by a cursor-backed deliverer, checked for
	// exactly-once effects against the final feed at the end of the
	// run (see egress.go).
	Egress bool
	// RandTriggers holds the generated (always non-perpetual) triggers
	// per class, indexed like classDefs.
	RandTriggers [][]RandTrigger
	Steps        []Step
}

// String renders the script as a human-readable reproduction recipe;
// failures embed it next to the seed.
func (sc *Script) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# sim script seed=%d persistent=%v egress=%v\n", sc.Seed, sc.Persistent, sc.Egress)
	for ci, trs := range sc.RandTriggers {
		for _, tr := range trs {
			fmt.Fprintf(&b, "trigger %s.%s: %s\n", classDefs[ci].name, tr.Name, tr.Event)
		}
	}
	for i, st := range sc.Steps {
		fmt.Fprintf(&b, "%3d: %s\n", i, st.String())
	}
	return b.String()
}

func (st Step) String() string {
	switch st.Kind {
	case StepAdvance:
		return fmt.Sprintf("advance %s", st.Advance)
	case StepCheckpoint:
		return "checkpoint"
	case StepFault:
		s := fmt.Sprintf("fault %v tear=%d delay=%d; %s", st.Fault.Point, st.Fault.Tear, st.Fault.Delay, opsString(st.Ops))
		return s
	default:
		verb := "tx"
		if st.Abort {
			verb = "tx-abort"
		}
		return fmt.Sprintf("%s %s", verb, opsString(st.Ops))
	}
}

func opsString(ops []Op) string {
	parts := make([]string, len(ops))
	for i, op := range ops {
		parts[i] = op.String()
	}
	return strings.Join(parts, ", ")
}

func (op Op) String() string {
	switch op.Kind {
	case OpCall:
		if op.HasArg {
			return fmt.Sprintf("o%d.%s(%d)", op.Obj, op.Method, op.Arg)
		}
		return fmt.Sprintf("o%d.%s()", op.Obj, op.Method)
	case OpActivate:
		if len(op.Params) > 0 {
			return fmt.Sprintf("o%d.activate(%s, %v)", op.Obj, op.Trigger, op.Params)
		}
		return fmt.Sprintf("o%d.activate(%s)", op.Obj, op.Trigger)
	case OpDeactivate:
		return fmt.Sprintf("o%d.deactivate(%s)", op.Obj, op.Trigger)
	case OpNew:
		return fmt.Sprintf("o%d = new %s", op.Obj, classDefs[op.Class].name)
	case OpDelete:
		return fmt.Sprintf("delete o%d", op.Obj)
	case OpBatch:
		parts := make([]string, len(op.Batch))
		for i, e := range op.Batch {
			if e.HasArg {
				parts[i] = fmt.Sprintf("o%d.%s(%d)", e.Obj, e.Method, e.Arg)
			} else {
				parts[i] = fmt.Sprintf("o%d.%s()", e.Obj, e.Method)
			}
		}
		return fmt.Sprintf("batch %s [%s]", classDefs[op.Class].name, strings.Join(parts, " "))
	case OpArmTimers:
		return fmt.Sprintf("o%d.arm-timers", op.Obj)
	case OpCrashDeliverer:
		return "crash-deliverer"
	case OpResumeConsumer:
		return "resume-consumer"
	default:
		return "?"
	}
}
