package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"ode/internal/engine"
	"ode/internal/fault"
	"ode/internal/part"
	"ode/internal/txn"
	"ode/internal/value"
)

// The multi-partition harness drives a part.DB — N single-writer
// engines behind the router and the sequenced bus — through seeded
// scripts, under the same three oracles as the single-engine harness:
// the §4 shadow oracle (replayed per partition across the bus), a
// per-partition ledger of object state, and per-fault crash-recovery
// contracts. Each partition carries its own fault registry
// (part.Options.PerPartition), so a WAL fault targets exactly one
// partition's log; the simulated crash is fail-stop for the whole
// process, and each partition then recovers independently from its own
// WAL.

// MultiConfig parameterizes multi-partition script generation.
type MultiConfig struct {
	Seed       int64
	Partitions int
	// Steps is the number of workload steps after the per-partition
	// setup transactions.
	Steps int
	// Objects is the number of objects created per class per partition.
	Objects int
	// Persistent runs WAL-backed partitions; required for fault steps.
	Persistent bool
	// Faults enables per-partition WAL fault steps (persistent only —
	// the single-writer engines never consult the lock-acquire point).
	Faults bool
}

// MultiDefaults returns a modest configuration for test budgets.
func MultiDefaults(seed int64) MultiConfig {
	return MultiConfig{Seed: seed, Partitions: 3, Steps: 40, Objects: 2}
}

// MStepKind enumerates multi-partition script steps.
type MStepKind uint8

const (
	// MStepTx runs Ops in one transaction on partition Part.
	MStepTx MStepKind = iota
	// MStepRelay forwards one method call from partition Src over the
	// bus to the object at (DstPart, DstSlot), then drains to quiescence.
	MStepRelay
	// MStepAdvance moves every partition's virtual clock.
	MStepAdvance
	// MStepCheckpoint checkpoints every partition.
	MStepCheckpoint
	// MStepFault arms a WAL fault on partition Part's registry, runs Ops
	// as the victim transaction there, and — if the fault fired —
	// simulates a whole-process crash with independent per-partition
	// recovery.
	MStepFault
)

// MStep is one step of a multi-partition script. Object slots are
// partition-local: (Part, Ops[i].Obj) and (DstPart, DstSlot) address
// the executor's per-partition object tables.
type MStep struct {
	Kind    MStepKind
	Part    int
	Ops     []Op
	Abort   bool
	Advance time.Duration
	Fault   FaultSpec

	Src     int
	DstPart int
	DstSlot int
	Method  string
	Arg     int64
	HasArg  bool
}

func (st MStep) String() string {
	switch st.Kind {
	case MStepRelay:
		if st.HasArg {
			return fmt.Sprintf("relay p%d -> p%d/o%d.%s(%d)", st.Src, st.DstPart, st.DstSlot, st.Method, st.Arg)
		}
		return fmt.Sprintf("relay p%d -> p%d/o%d.%s()", st.Src, st.DstPart, st.DstSlot, st.Method)
	case MStepAdvance:
		return fmt.Sprintf("advance %s", st.Advance)
	case MStepCheckpoint:
		return "checkpoint"
	case MStepFault:
		return fmt.Sprintf("fault p%d %v tear=%d; %s", st.Part, st.Fault.Point, st.Fault.Tear, opsString(st.Ops))
	default:
		verb := "tx"
		if st.Abort {
			verb = "tx-abort"
		}
		return fmt.Sprintf("%s p%d %s", verb, st.Part, opsString(st.Ops))
	}
}

// MultiScript is a deterministic multi-partition simulation input.
type MultiScript struct {
	Seed       int64
	Partitions int
	Persistent bool
	Steps      []MStep
}

// String renders the script as a reproduction recipe.
func (sc *MultiScript) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# multipart sim script seed=%d partitions=%d persistent=%v\n",
		sc.Seed, sc.Partitions, sc.Persistent)
	for i, st := range sc.Steps {
		fmt.Fprintf(&b, "%3d: %s\n", i, st.String())
	}
	return b.String()
}

// GenerateMulti derives a deterministic multi-partition script from
// cfg. Like Generate, all randomness is consumed here.
func GenerateMulti(cfg MultiConfig) *MultiScript {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 3
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 40
	}
	if cfg.Objects <= 0 {
		cfg.Objects = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sc := &MultiScript{Seed: cfg.Seed, Partitions: cfg.Partitions, Persistent: cfg.Persistent}
	// The fixed trigger pool only; random triggers stay a single-engine
	// concern (the combinator coverage is identical on every partition).
	fake := &Script{Persistent: cfg.Persistent}

	slotClass := make([][]int, cfg.Partitions)
	for p := 0; p < cfg.Partitions; p++ {
		var init []Op
		for ci := range classDefs {
			for i := 0; i < cfg.Objects; i++ {
				slot := len(slotClass[p])
				slotClass[p] = append(slotClass[p], ci)
				init = append(init, Op{Kind: OpNew, Obj: slot, Class: ci})
				init = append(init, activateAll(fake, rng, slot, ci)...)
			}
		}
		sc.Steps = append(sc.Steps, MStep{Kind: MStepTx, Part: p, Ops: init})
	}

	for s := 0; s < cfg.Steps; s++ {
		r := rng.Intn(100)
		p := rng.Intn(cfg.Partitions)
		switch {
		case r < 6:
			sc.Steps = append(sc.Steps, MStep{Kind: MStepAdvance,
				Advance: time.Duration(1+rng.Intn(30)) * time.Hour})
		case r < 10 && cfg.Persistent:
			sc.Steps = append(sc.Steps, MStep{Kind: MStepCheckpoint})
		case r < 22 && cfg.Faults && cfg.Persistent:
			sc.Steps = append(sc.Steps, genMultiFault(rng, p))
		case r < 40:
			// Cross-partition forwarding: a primitive occurrence relayed
			// over the bus. Arguments stay below the AbortBig threshold so
			// the relayed transaction always commits and the ledger applies
			// its effect unconditionally.
			dstPart := rng.Intn(cfg.Partitions)
			dstSlot := rng.Intn(len(slotClass[dstPart]))
			st := MStep{Kind: MStepRelay, Src: p, DstPart: dstPart, DstSlot: dstSlot}
			if slotClass[dstPart][dstSlot] == classAcct {
				st.Method = []string{"dep", "wdr"}[rng.Intn(2)]
				st.HasArg, st.Arg = true, int64(1+rng.Intn(400))
			} else {
				st.Method = "bump"
			}
			sc.Steps = append(sc.Steps, st)
		case r < 48:
			sc.Steps = append(sc.Steps, MStep{Kind: MStepTx, Part: p, Abort: true,
				Ops: genOps(fake, rng, slotClass[p], 1+rng.Intn(3), nil)})
		default:
			sc.Steps = append(sc.Steps, MStep{Kind: MStepTx, Part: p,
				Ops: genOps(fake, rng, slotClass[p], 1+rng.Intn(4), &slotClass[p])})
		}
	}
	return sc
}

// genMultiFault picks a WAL fault point for partition p's registry.
// The victim always updates reserved slot 0 (class acct) so its commit
// writes p's WAL.
func genMultiFault(rng *rand.Rand, p int) MStep {
	victim := []Op{{Kind: OpCall, Obj: 0, Method: "dep", HasArg: true, Arg: int64(1 + rng.Intn(200))}}
	switch rng.Intn(5) {
	case 0:
		return MStep{Kind: MStepFault, Part: p, Ops: victim,
			Fault: FaultSpec{Point: fault.WALWrite, Tear: -1}}
	case 1:
		return MStep{Kind: MStepFault, Part: p, Ops: victim,
			Fault: FaultSpec{Point: fault.WALWrite, Tear: 1 + rng.Intn(64)}}
	case 2:
		return MStep{Kind: MStepFault, Part: p, Ops: victim,
			Fault: FaultSpec{Point: fault.WALSync, Tear: -1}}
	case 3:
		return MStep{Kind: MStepFault, Part: p, Ops: victim,
			Fault: FaultSpec{Point: fault.WALAfterSync, Tear: -1}}
	default:
		// Torn multi-record frame: both reserved acct slots in one batch.
		return MStep{Kind: MStepFault, Part: p,
			Ops: []Op{{Kind: OpBatch, Class: classAcct, Batch: []BatchCall{
				{Obj: 0, Method: "dep", HasArg: true, Arg: int64(1 + rng.Intn(200))},
				{Obj: 1, Method: "dep", HasArg: true, Arg: int64(1 + rng.Intn(200))},
			}}},
			Fault: FaultSpec{Point: fault.WALWrite, Tear: 1 + rng.Intn(256)}}
	}
}

// MultiResult summarizes one deterministic multi-partition run.
type MultiResult struct {
	Seed           int64
	Firings        [][]string // per partition, in that partition's firing order
	Crashes        int
	Recoveries     int
	TornTails      int
	InjectedFaults uint64
	Fingerprint    string
}

// mStage stages one partition-local transaction's model updates.
type mStage struct {
	x       *mexec
	part    int
	touched map[int]*objState
}

func (s *mStage) view(slot int) *objState {
	if v, ok := s.touched[slot]; ok {
		return v
	}
	return s.x.slot(s.part, slot)
}

func (s *mStage) put(slot int, v *objState) { s.touched[slot] = v }

func (s *mStage) commit() {
	for slot, v := range s.touched {
		s.x.setSlot(s.part, slot, v)
	}
}

type mexec struct {
	sc   *MultiScript
	dir  string
	regs []*fault.Registry
	db   *part.DB

	model [][]*objState

	fireMu  sync.Mutex
	firings [][]string

	timerErrSeen []int
	relayErrSeen int
	crashes      int
	recoveries   int
	tornTails    int
}

func (x *mexec) slot(p, i int) *objState {
	if i < len(x.model[p]) {
		return x.model[p][i]
	}
	return nil
}

func (x *mexec) setSlot(p, i int, v *objState) {
	for len(x.model[p]) <= i {
		x.model[p] = append(x.model[p], nil)
	}
	x.model[p][i] = v
}

// ExecuteMultiTemp executes sc with a scratch directory when needed.
func ExecuteMultiTemp(sc *MultiScript, base string) (*MultiResult, error) {
	dir := ""
	if sc.Persistent {
		d, err := os.MkdirTemp(base, "odesim-part-*")
		if err != nil {
			return nil, fmt.Errorf("sim: scratch dir: %w", err)
		}
		defer os.RemoveAll(d)
		dir = d
	}
	return ExecuteMulti(sc, dir)
}

// ExecuteMulti runs a multi-partition script to completion. Failures
// are returned as errors prefixed with the seed and step — the script
// is fully reproducible from the seed via GenerateMulti.
func ExecuteMulti(sc *MultiScript, dir string) (*MultiResult, error) {
	if sc.Persistent && dir == "" {
		return nil, errors.New("sim: persistent multipart script needs a directory")
	}
	x := &mexec{
		sc:      sc,
		dir:     dir,
		model:   make([][]*objState, sc.Partitions),
		firings: make([][]string, sc.Partitions),
	}
	for p := 0; p < sc.Partitions; p++ {
		x.regs = append(x.regs, fault.New())
	}
	if err := x.open(time.Time{}); err != nil {
		return nil, fmt.Errorf("sim: multipart open: %w", err)
	}
	defer func() { x.db.Close() }()

	for i, st := range sc.Steps {
		if err := x.runStep(st); err != nil {
			return nil, fmt.Errorf("sim: multipart seed %d failed at step %d (%s): %w\nreproduce with:\n%s",
				sc.Seed, i, st, err, sc.String())
		}
	}
	// Final oracles: ledger per partition, §4 replay across the bus,
	// ownership invariant.
	x.db.Drain()
	for p := 0; p < sc.Partitions; p++ {
		if err := modelStateErr(x.db.Partition(p).Engine().Store(), x.model[p], nil, false); err != nil {
			return nil, fmt.Errorf("sim: multipart seed %d: final ledger, partition %d: %w", sc.Seed, p, err)
		}
		if err := timerScheduleErr(x.db.Partition(p).Engine()); err != nil {
			return nil, fmt.Errorf("sim: multipart seed %d: partition %d: %w", sc.Seed, p, err)
		}
	}
	if err := x.db.VerifyOracle(); err != nil {
		return nil, fmt.Errorf("sim: multipart seed %d: final oracle: %w", sc.Seed, err)
	}
	if err := x.db.CheckOwnership(); err != nil {
		return nil, fmt.Errorf("sim: multipart seed %d: %w", sc.Seed, err)
	}

	var injected uint64
	for _, reg := range x.regs {
		injected += reg.Injected()
	}
	res := &MultiResult{
		Seed:           sc.Seed,
		Firings:        x.firings,
		Crashes:        x.crashes,
		Recoveries:     x.recoveries,
		TornTails:      x.tornTails,
		InjectedFaults: injected,
	}
	res.Fingerprint = x.fingerprint()
	return res, nil
}

// open builds a part.DB incarnation: every partition gets its own
// fault registry and recovers (when persistent) from its own WAL.
func (x *mexec) open(start time.Time) error {
	db, err := part.Open(part.Options{
		N:      x.sc.Partitions,
		Dir:    x.dir,
		Engine: engine.Options{Start: start, ShadowOracle: true},
		PerPartition: func(p int, eo *engine.Options) {
			eo.Faults = x.regs[p]
		},
	})
	if err != nil {
		return err
	}
	fake := &Script{Persistent: x.sc.Persistent}
	err = db.Register(func(p int, e *engine.Engine) error {
		for ci := range classDefs {
			cls, impl := buildClass(ci, fake, x.fire)
			if _, rerr := e.RegisterClass(cls, impl, nil); rerr != nil {
				return rerr
			}
		}
		return nil
	})
	if err != nil {
		db.Close()
		return err
	}
	x.db = db
	x.timerErrSeen = make([]int, x.sc.Partitions)
	x.relayErrSeen = 0
	return nil
}

// fire records a firing under its owning partition — actions run only
// on loop goroutines, and the partition is arithmetic over Self.
func (x *mexec) fire(class, trigger string, ctx *engine.ActionCtx) {
	p := part.PartitionOf(ctx.Self, x.sc.Partitions)
	x.fireMu.Lock()
	x.firings[p] = append(x.firings[p], fmt.Sprintf("%s.%s oid=%d on %s", class, trigger, ctx.Self, ctx.EventKind))
	x.fireMu.Unlock()
}

func (x *mexec) runStep(st MStep) error {
	switch st.Kind {
	case MStepAdvance:
		if err := x.db.Advance(st.Advance); err != nil {
			return fmt.Errorf("advance: %w", err)
		}
		return x.checkErrs()
	case MStepCheckpoint:
		if !x.sc.Persistent {
			return nil
		}
		if err := x.db.Checkpoint(); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		return nil
	case MStepRelay:
		return x.runRelay(st)
	case MStepFault:
		return x.runFault(st)
	default:
		return x.runTx(st.Part, st.Ops, st.Abort)
	}
}

func (x *mexec) runRelay(st MStep) error {
	dst := x.slot(st.DstPart, st.DstSlot)
	if dst == nil || !dst.alive {
		return nil
	}
	var args []value.Value
	if st.HasArg {
		args = append(args, value.Int(st.Arg))
	}
	x.db.RelayCall(st.Src, dst.oid, st.Method, args...)
	x.db.Drain()
	if errs := x.db.RelayErrors(); len(errs) > x.relayErrSeen {
		return fmt.Errorf("relayed call failed: %v", errs[x.relayErrSeen:])
	}
	ns := dst.clone()
	classDefs[ns.class].apply(ns.fields, st.Method, st.Arg)
	x.setSlot(st.DstPart, st.DstSlot, ns)
	return x.checkErrs()
}

// runTx executes one partition-local transaction inside the owning
// loop, mirroring the single-engine executor's stage/commit protocol.
func (x *mexec) runTx(p int, ops []Op, abort bool) error {
	stage := &mStage{x: x, part: p, touched: map[int]*objState{}}
	var (
		opFail    error // unexpected op error
		commitErr error // Commit's error (nil on clean paths)
		committed bool
		aborted   bool
	)
	doErr := x.db.Do(p, func(e *engine.Engine) error {
		tx := e.Begin()
		for _, op := range ops {
			err := applyOpTx(tx, stage.view, stage.put, op)
			if err == nil {
				continue
			}
			if errors.Is(err, engine.ErrTabort) || errors.Is(err, fault.ErrInjected) {
				if aerr := tx.Abort(); aerr != nil && !errors.Is(aerr, txn.ErrNotActive) {
					opFail = fmt.Errorf("abort after %v: %w", err, aerr)
				}
				aborted = true
				return nil
			}
			opFail = fmt.Errorf("op %s: %w", op, err)
			if aerr := tx.Abort(); aerr != nil && !errors.Is(aerr, txn.ErrNotActive) {
				opFail = fmt.Errorf("%v (abort also failed: %v)", opFail, aerr)
			}
			return nil
		}
		if abort {
			if err := tx.Abort(); err != nil {
				opFail = fmt.Errorf("scripted abort: %w", err)
			}
			aborted = true
			return nil
		}
		commitErr = tx.Commit()
		committed = tx.Underlying().State() == txn.Committed
		return nil
	})
	if doErr != nil {
		return doErr
	}
	if opFail != nil {
		return opFail
	}
	if aborted {
		return x.checkErrs()
	}
	switch {
	case commitErr == nil:
		stage.commit()
		return x.checkErrs()
	case errors.Is(commitErr, engine.ErrTabort):
		return x.checkErrs()
	case errors.Is(commitErr, fault.ErrInjected):
		var fe *fault.Error
		if !errors.As(commitErr, &fe) {
			return fmt.Errorf("injected error without fault.Error: %w", commitErr)
		}
		return x.crashCycle(p, stage, fe, committed)
	default:
		return fmt.Errorf("commit on partition %d: %w", p, commitErr)
	}
}

func (x *mexec) runFault(st MStep) error {
	reg := x.regs[st.Part]
	switch st.Fault.Point {
	case fault.WALWrite, fault.WALSync, fault.WALAfterSync:
		if !x.sc.Persistent {
			return fmt.Errorf("WAL fault point %v in a volatile script", st.Fault.Point)
		}
		if st.Fault.Tear >= 0 {
			reg.ArmNextTear(st.Fault.Point, st.Fault.Tear)
		} else {
			reg.ArmNext(st.Fault.Point)
		}
	default:
		return fmt.Errorf("fault point %v not supported on partitions", st.Fault.Point)
	}
	err := x.runTx(st.Part, st.Ops, false)
	// Fail-stop modeling: a plan must not survive its fault step (the
	// victim may have aborted before reaching the WAL).
	if reg.Armed() > 0 {
		reg.Disarm()
	}
	return err
}

// crashCycle simulates a whole-process crash at an injected WAL fault
// on partition p: the part.DB is torn down and reopened, every
// partition recovering independently from its own WAL. Partition p's
// pending transaction is reconciled post/pre; all other partitions
// must recover to exactly their committed ledger state.
func (x *mexec) crashCycle(p int, stage *mStage, fe *fault.Error, committed bool) error {
	now := x.db.Now()
	x.db.Close()
	for _, reg := range x.regs {
		reg.Disarm()
	}
	x.crashes++
	if err := x.open(now); err != nil {
		return fmt.Errorf("recovery open after %v: %w", fe, err)
	}
	if err := x.db.RearmTimers(); err != nil {
		return fmt.Errorf("rearm timers after recovery: %w", err)
	}
	// Every partition — victim or not — must rebuild its cohort
	// schedule from its own recovered store alone.
	for q := 0; q < x.sc.Partitions; q++ {
		if err := timerScheduleErr(x.db.Partition(q).Engine()); err != nil {
			return fmt.Errorf("rearm reconciliation on partition %d after %v: %w", q, fe, err)
		}
	}
	x.recoveries++
	for q := 0; q < x.sc.Partitions; q++ {
		if rec := x.db.Partition(q).Engine().Store().Recovery(); rec.TornTail {
			x.tornTails++
			if q != p {
				return fmt.Errorf("crash at %v on partition %d tore partition %d's WAL", fe, p, q)
			}
		}
	}

	// Unaffected partitions must hold exactly the committed ledger.
	for q := 0; q < x.sc.Partitions; q++ {
		if q == p {
			continue
		}
		if err := modelStateErr(x.db.Partition(q).Engine().Store(), x.model[q], nil, false); err != nil {
			return fmt.Errorf("partition %d diverged after partition %d's crash at %v: %w", q, p, fe, err)
		}
	}
	// The victim partition reconciles like the single-engine harness.
	victimStore := x.db.Partition(p).Engine().Store()
	postErr := modelStateErr(victimStore, x.model[p], stage.touched, true)
	preErr := modelStateErr(victimStore, x.model[p], stage.touched, false)
	post, pre := postErr == nil, preErr == nil
	switch {
	case committed && !post:
		return fmt.Errorf("crash at %v lost an acknowledged commit on partition %d: %v", fe, p, postErr)
	case fe.Point == fault.WALAfterSync && !post:
		return fmt.Errorf("crash after WAL sync lost a durable commit on partition %d: %v", fe.Point, postErr)
	case fe.Point == fault.WALWrite && fe.Tear < 0 && !pre:
		return fmt.Errorf("crash before WAL write surfaced effects on partition %d: %v", p, preErr)
	case post:
		stage.commit()
	case pre:
		// cleanly rolled away
	default:
		return fmt.Errorf("non-atomic recovery on partition %d at %v: not post (%v) and not pre (%v)",
			p, fe, postErr, preErr)
	}

	if err := x.db.VerifyOracle(); err != nil {
		return fmt.Errorf("oracle after recovery from %v: %w", fe, err)
	}
	if err := x.db.CheckOwnership(); err != nil {
		return fmt.Errorf("ownership after recovery from %v: %w", fe, err)
	}
	return x.checkErrs()
}

// checkErrs drains newly recorded timer and relay errors on every
// partition; any of either fails the run (multipart scripts never arm
// faults outside a victim transaction).
func (x *mexec) checkErrs() error {
	for p := 0; p < x.sc.Partitions; p++ {
		errs := x.db.Partition(p).Engine().TimerErrors()
		for _, err := range errs[x.timerErrSeen[p]:] {
			return fmt.Errorf("timer delivery on partition %d: %w", p, err)
		}
		x.timerErrSeen[p] = len(errs)
	}
	if errs := x.db.RelayErrors(); len(errs) > x.relayErrSeen {
		return fmt.Errorf("relay errors: %v", errs[x.relayErrSeen:])
	}
	return nil
}

// fingerprint digests the run's observable behaviour: per-partition
// firing order, the final ledger, crash counters and the canonical
// merged metrics. Two same-seed runs must produce identical strings.
func (x *mexec) fingerprint() string {
	h := sha256.New()
	for p, fs := range x.firings {
		fmt.Fprintf(h, "partition %d:\n", p)
		for _, f := range fs {
			fmt.Fprintln(h, f)
		}
	}
	for p, slots := range x.model {
		for i, v := range slots {
			if v == nil || !v.alive {
				fmt.Fprintf(h, "p%d/o%d: dead\n", p, i)
				continue
			}
			fmt.Fprintf(h, "p%d/o%d: oid=%d class=%s", p, i, v.oid, classDefs[v.class].name)
			for _, fd := range classDefs[v.class].fields {
				fmt.Fprintf(h, " %s=%d", fd.Name, v.fields[fd.Name])
			}
			fmt.Fprintln(h)
		}
	}
	fmt.Fprintf(h, "crashes=%d recoveries=%d torn=%d\n", x.crashes, x.recoveries, x.tornTails)
	fmt.Fprintf(h, "%+v\n", x.db.Metrics().Canonical())
	return hex.EncodeToString(h.Sum(nil))
}
