package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"time"

	"ode/internal/egress"
	"ode/internal/engine"
	"ode/internal/evlang"
	"ode/internal/fault"
	"ode/internal/obs"
	"ode/internal/store"
	"ode/internal/txn"
	"ode/internal/value"
)

// Result summarizes one deterministic run. Fingerprint is a digest of
// everything observable — firing log, final object state, activity
// counters and canonical per-trigger metrics — so two same-seed runs
// can be compared for bit-identical behaviour with a string equality.
type Result struct {
	Seed              int64
	Firings           []string
	Stats             engine.Stats
	Crashes           int
	Recoveries        int
	TornTails         int
	InjectedFaults    uint64
	InjectedTimerErrs int
	Fingerprint       string

	// Egress summary (populated for Script.Egress runs): the final
	// durable feed length, the distinct effects the ledger receiver
	// applied (== EgressFeed when the exactly-once oracle held), and
	// the delivery churn behind them.
	EgressFeed        int
	EgressEffects     int
	EgressDelivered   uint64
	EgressRedelivered uint64
	EgressGaveUp      uint64
	EgressCursorSaves uint64
	EgressCursorErrs  uint64
	DelivererCrashes  int
	DelivererResumes  int
}

// Failure is a detected divergence (oracle mismatch, non-atomic
// recovery, lost commit, model drift). It carries the seed and the
// full script so the error message alone reproduces the run.
type Failure struct {
	Seed   int64
	Step   int
	Script *Script
	Err    error
	// Flight is the engine's flight-recorder dump at the moment of
	// failure — the last pipeline events leading into the divergence.
	// When the failing step simulated a crash it is the pre-crash
	// capture, taken before the incarnation was torn down.
	Flight []obs.FlightEvent
}

func (f *Failure) Error() string {
	return fmt.Sprintf("sim: seed %d failed at step %d: %v (%d flight-recorder events attached)\nreproduce with:\n%s",
		f.Seed, f.Step, f.Err, len(f.Flight), f.Script.String())
}

func (f *Failure) Unwrap() error { return f.Err }

// objState is the model's view of one object slot: the fields the
// engine must hold for it after every committed transaction.
type objState struct {
	class  int
	alive  bool
	oid    store.OID
	fields map[string]int64
}

func (o *objState) clone() *objState {
	c := *o
	c.fields = make(map[string]int64, len(o.fields))
	for k, v := range o.fields {
		c.fields[k] = v
	}
	return &c
}

// txStage holds one transaction's uncommitted model updates; they are
// folded into the model only when the engine reports the commit
// durable (or when crash recovery proves the transaction survived).
type txStage struct {
	x       *exec
	touched map[int]*objState
}

func (s *txStage) view(slot int) *objState {
	if v, ok := s.touched[slot]; ok {
		return v
	}
	return s.x.slot(slot)
}

func (s *txStage) put(slot int, v *objState) { s.touched[slot] = v }

func (s *txStage) commit() {
	for slot, v := range s.touched {
		s.x.setSlot(slot, v)
	}
}

type exec struct {
	sc  *Script
	dir string
	reg *fault.Registry
	eng *engine.Engine

	model   []*objState
	firings []string
	// flight, when non-nil, is a flight-recorder capture saved just
	// before a crashed incarnation was closed; failFlight prefers it
	// over the live engine's (post-recovery) recorder.
	flight []obs.FlightEvent

	stats             engine.Stats // summed across engine incarnations
	timerErrSeen      int
	crashes           int
	recoveries        int
	tornTails         int
	injectedTimerErrs int

	// egress harness state (sc.Egress; see egress.go)
	delv        *egress.Deliverer
	delvCursor  *egress.Cursor
	effects     map[string]string // idempotency key -> record fingerprint
	feedSeen    []store.FiringRecord
	egressErr   error  // receiver-side failure (key collision)
	redelivered uint64 // dedupe-absorbed duplicate deliveries
	// deliverer counters folded across incarnations
	delivered   uint64
	gaveUp      uint64
	cursorSaves uint64
	cursorErrs  uint64
	delvCrashes int
	delvResumes int
}

func (x *exec) slot(i int) *objState {
	if i < len(x.model) {
		return x.model[i]
	}
	return nil
}

func (x *exec) setSlot(i int, v *objState) {
	for len(x.model) <= i {
		x.model = append(x.model, nil)
	}
	x.model[i] = v
}

// Execute runs a script to completion, checking the model, the §4
// oracle and recovery atomicity along the way. The returned error, if
// any, is a *Failure embedding the reproduction script.
func Execute(sc *Script, dir string) (res *Result, err error) {
	if sc.Persistent && dir == "" {
		return nil, errors.New("sim: persistent script needs a directory")
	}
	x := &exec{sc: sc, dir: dir, reg: fault.New()}
	if err := x.open(time.Time{}); err != nil {
		return nil, fmt.Errorf("sim: open: %w", err)
	}
	defer func() { x.eng.Close() }()
	if sc.Egress {
		if err := x.openDeliverer(); err != nil {
			return nil, fmt.Errorf("sim: open deliverer: %w", err)
		}
	}
	defer x.teardownDeliverer()
	// A panic anywhere in the run becomes a Failure carrying the flight
	// recorder: the crash dump that makes the aftermath debuggable.
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &Failure{Seed: sc.Seed, Step: -1, Script: sc,
				Err: fmt.Errorf("panic: %v", r), Flight: x.failFlight()}
		}
	}()

	for i, st := range sc.Steps {
		x.flight = nil
		if err := x.runStep(st); err != nil {
			return nil, &Failure{Seed: sc.Seed, Step: i, Script: sc, Err: err, Flight: x.failFlight()}
		}
		if err := x.pumpEgress(); err != nil {
			return nil, &Failure{Seed: sc.Seed, Step: i, Script: sc, Err: err, Flight: x.failFlight()}
		}
	}
	final := len(sc.Steps)
	x.flight = nil
	if err := x.egressFinalErr(); err != nil {
		return nil, &Failure{Seed: sc.Seed, Step: final, Script: sc, Err: err, Flight: x.failFlight()}
	}
	if err := x.stateErr(nil, false); err != nil {
		return nil, &Failure{Seed: sc.Seed, Step: final, Script: sc, Err: err, Flight: x.failFlight()}
	}
	if err := x.eng.VerifyOracle(); err != nil {
		return nil, &Failure{Seed: sc.Seed, Step: final, Script: sc, Err: err, Flight: x.failFlight()}
	}
	if err := timerScheduleErr(x.eng); err != nil {
		return nil, &Failure{Seed: sc.Seed, Step: final, Script: sc, Err: err, Flight: x.failFlight()}
	}
	x.teardownDeliverer() // fold the final incarnation's delivery counters
	x.collectStats()
	x.stats.FaultsInjected = x.reg.Injected()

	res = &Result{
		Seed:              sc.Seed,
		Firings:           x.firings,
		Stats:             x.stats,
		Crashes:           x.crashes,
		Recoveries:        x.recoveries,
		TornTails:         x.tornTails,
		InjectedFaults:    x.reg.Injected(),
		InjectedTimerErrs: x.injectedTimerErrs,
		EgressFeed:        len(x.feedSeen),
		EgressEffects:     len(x.effects),
		EgressDelivered:   x.delivered,
		EgressRedelivered: x.redelivered,
		EgressGaveUp:      x.gaveUp,
		EgressCursorSaves: x.cursorSaves,
		EgressCursorErrs:  x.cursorErrs,
		DelivererCrashes:  x.delvCrashes,
		DelivererResumes:  x.delvResumes,
	}
	res.Fingerprint = x.fingerprint()
	return res, nil
}

// open builds an engine incarnation over the script's classes. start
// carries the virtual clock across simulated crashes.
func (x *exec) open(start time.Time) error {
	opts := engine.Options{Start: start, ShadowOracle: true, Faults: x.reg}
	if x.sc.Persistent {
		opts.Dir = x.dir
	}
	eng, err := engine.New(opts)
	if err != nil {
		return err
	}
	for ci := range classDefs {
		cls, impl := buildClass(ci, x.sc, x.fire)
		if _, err := eng.RegisterClass(cls, impl, nil); err != nil {
			eng.Close()
			return err
		}
	}
	x.eng = eng
	x.timerErrSeen = 0
	return nil
}

func (x *exec) fire(class, trigger string, ctx *engine.ActionCtx) {
	x.firings = append(x.firings,
		fmt.Sprintf("%s.%s oid=%d on %s", class, trigger, ctx.Self, ctx.EventKind))
}

func (x *exec) runStep(st Step) error {
	switch st.Kind {
	case StepAdvance:
		x.eng.Clock().Advance(st.Advance)
		return x.checkTimerErrs()
	case StepCheckpoint:
		if !x.sc.Persistent {
			return nil
		}
		if err := x.eng.Checkpoint(); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		return nil
	case StepFault:
		return x.runFault(st)
	default:
		return x.runTx(st.Ops, st.Abort)
	}
}

func (x *exec) runFault(st Step) error {
	switch st.Fault.Point {
	case fault.LockAcquire:
		x.reg.ArmAt(fault.LockAcquire, x.reg.Consults(fault.LockAcquire)+1+st.Fault.Delay)
	case fault.WALWrite, fault.WALSync, fault.WALAfterSync:
		if !x.sc.Persistent {
			return fmt.Errorf("WAL fault point %v in a volatile script", st.Fault.Point)
		}
		if st.Fault.Tear >= 0 {
			x.reg.ArmNextTear(st.Fault.Point, st.Fault.Tear)
		} else {
			x.reg.ArmNext(st.Fault.Point)
		}
	case fault.EgressAppend:
		// Fires inside the victim's LogCommit, before anything reaches
		// the WAL; the executor escalates it to a simulated crash whose
		// recovery must land on the pre state with no feed extras.
		if !x.sc.Persistent {
			return fmt.Errorf("egress-append fault in a volatile script")
		}
		x.reg.ArmNext(fault.EgressAppend)
	case fault.EgressCursor:
		// Fires at the deliverer's cursor save during this step's pump;
		// an ArmTear plan leaves a torn prefix on disk for the next
		// OpenCursor to detect and discard.
		if !x.sc.Egress || !x.sc.Persistent {
			return fmt.Errorf("egress-cursor fault needs a persistent egress script")
		}
		if st.Fault.Tear >= 0 {
			x.reg.ArmNextTear(fault.EgressCursor, st.Fault.Tear)
		} else {
			x.reg.ArmNext(fault.EgressCursor)
		}
	case fault.EgressDeliver:
		// Fail the next 1+Delay consecutive send attempts (see
		// FaultSpec.Delay); past MaxAttempts-1 the deliverer gives up
		// and stalls until a later pump.
		if !x.sc.Egress {
			return fmt.Errorf("egress-deliver fault in a non-egress script")
		}
		base := x.reg.Consults(fault.EgressDeliver)
		for i := uint64(0); i <= st.Fault.Delay; i++ {
			x.reg.ArmAt(fault.EgressDeliver, base+1+i)
		}
	default:
		return fmt.Errorf("unknown fault point %v", st.Fault.Point)
	}
	err := x.runTx(st.Ops, false)
	if err == nil && (st.Fault.Point == fault.EgressCursor || st.Fault.Point == fault.EgressDeliver) {
		// Consume the armed plans deterministically inside this fault
		// step: the delivery pump is where these points are consulted.
		err = x.pumpEgress()
	}
	// A WAL plan must never outlive its fault step: the victim always
	// dirties slot 0 so the plan fires at its commit, but a minimized
	// script may have emptied the victim — firing later (e.g. inside a
	// timer delivery, after which the engine would keep appending past
	// a torn tail) would not model a fail-stop crash. Lock plans may
	// linger by design (FaultSpec.Delay); re-arm surviving ones.
	if x.reg.Armed() > 0 {
		lockPlans := x.reg.ArmedAt(fault.LockAcquire)
		x.reg.Disarm()
		for _, at := range lockPlans {
			x.reg.ArmAt(fault.LockAcquire, at)
		}
	}
	return err
}

// runTx executes one transaction worth of ops. Injected lock faults
// and trigger-raised taborts roll the transaction (and its stage)
// back; injected WAL faults escalate to a simulated crash.
func (x *exec) runTx(ops []Op, abort bool) error {
	stage := &txStage{x: x, touched: map[int]*objState{}}
	tx := x.eng.Begin()
	for _, op := range ops {
		err := x.applyOp(tx, stage, op)
		if err == nil {
			continue
		}
		if errors.Is(err, engine.ErrTabort) || errors.Is(err, fault.ErrInjected) {
			if aerr := tx.Abort(); aerr != nil && !errors.Is(aerr, txn.ErrNotActive) {
				return fmt.Errorf("abort after %v: %w", err, aerr)
			}
			return x.checkTimerErrs()
		}
		return fmt.Errorf("op %s: %w", op, err)
	}
	if abort {
		if err := tx.Abort(); err != nil {
			return fmt.Errorf("scripted abort: %w", err)
		}
		return x.checkTimerErrs()
	}

	err := tx.Commit()
	switch {
	case err == nil:
		stage.commit()
		return x.checkTimerErrs()
	case errors.Is(err, engine.ErrTabort):
		// a before-tcomplete trigger raised tabort; clean rollback
		return x.checkTimerErrs()
	case errors.Is(err, fault.ErrInjected):
		var fe *fault.Error
		if !errors.As(err, &fe) {
			return fmt.Errorf("injected error without fault.Error: %w", err)
		}
		committed := tx.Underlying().State() == txn.Committed
		if fe.Point == fault.LockAcquire {
			// Either the fault hit the tcomplete fixpoint (clean abort)
			// or it hit post-commit outcome delivery (commit durable).
			if committed {
				stage.commit()
			}
			return x.checkTimerErrs()
		}
		return x.crashCycle(stage, fe, committed, tx.Underlying().ID())
	default:
		return fmt.Errorf("commit: %w", err)
	}
}

func (x *exec) applyOp(tx *engine.Tx, stage *txStage, op Op) error {
	switch op.Kind {
	// Deliverer lifecycle ops act on harness state, not the engine;
	// they ride inside transaction steps but are not transactional.
	case OpCrashDeliverer:
		x.crashDeliverer()
		return nil
	case OpResumeConsumer:
		return x.resumeConsumer()
	}
	return applyOpTx(tx, stage.view, stage.put, op)
}

// applyOpTx executes one scripted op against tx, resolving and staging
// model state through view/put. Shared by the single-engine executor
// (txStage) and the partitioned executor (mStage in multipart.go).
func applyOpTx(tx *engine.Tx, view func(int) *objState, put func(int, *objState), op Op) error {
	cur := view(op.Obj)
	switch op.Kind {
	case OpNew:
		if cur != nil && cur.alive {
			return nil // slot occupied (can happen in minimized scripts)
		}
		oid, err := tx.NewObject(classDefs[op.Class].name, nil)
		if err != nil {
			return err
		}
		put(op.Obj, &objState{
			class: op.Class, alive: true, oid: oid,
			fields: classDefs[op.Class].newFields(),
		})
		return nil
	case OpDelete:
		if cur == nil || !cur.alive {
			return nil
		}
		if err := tx.DeleteObject(cur.oid); err != nil {
			return err
		}
		ns := cur.clone()
		ns.alive = false
		put(op.Obj, ns)
		return nil
	case OpCall:
		if cur == nil || !cur.alive {
			return nil
		}
		var args []value.Value
		if op.HasArg {
			args = append(args, value.Int(op.Arg))
		}
		if _, err := tx.Call(cur.oid, op.Method, args...); err != nil {
			return err
		}
		ns := cur.clone()
		classDefs[ns.class].apply(ns.fields, op.Method, op.Arg)
		put(op.Obj, ns)
		return nil
	case OpBatch:
		// Build the engine batch from the entries whose slot is live,
		// exactly the entries OpCall semantics would execute; the model
		// applies the same subset after the engine succeeds. A failure
		// (tabort, injected fault) discards the whole stage along with
		// the transaction, so partial engine application cannot drift.
		b := engine.NewBatch(classDefs[op.Class].name, len(op.Batch))
		live := make([]BatchCall, 0, len(op.Batch))
		for _, e := range op.Batch {
			ec := view(e.Obj)
			if ec == nil || !ec.alive || ec.class != op.Class {
				continue
			}
			if e.HasArg {
				b.Call(ec.oid, e.Method, value.Int(e.Arg))
			} else {
				b.Call(ec.oid, e.Method)
			}
			live = append(live, e)
		}
		if b.Len() == 0 {
			return nil
		}
		if err := tx.PostBatch(b); err != nil {
			return err
		}
		for _, e := range live {
			ec := view(e.Obj)
			ns := ec.clone()
			classDefs[ns.class].apply(ns.fields, e.Method, e.Arg)
			put(e.Obj, ns)
		}
		return nil
	case OpArmTimers:
		if cur == nil || !cur.alive {
			return nil
		}
		for _, name := range timerTrigNames[cur.class] {
			if err := tx.Activate(cur.oid, name); err != nil {
				return err
			}
		}
		return nil
	case OpActivate:
		if cur == nil || !cur.alive {
			return nil
		}
		var ps []value.Value
		for _, p := range op.Params {
			ps = append(ps, value.Int(p))
		}
		return tx.Activate(cur.oid, op.Trigger, ps...)
	case OpDeactivate:
		if cur == nil || !cur.alive {
			return nil
		}
		return tx.Deactivate(cur.oid, op.Trigger)
	default:
		return fmt.Errorf("unknown op kind %d", op.Kind)
	}
}

// crashCycle abandons the current engine at an injected WAL fault,
// reopens the directory, and reconciles the pending transaction
// against what recovery produced. fe is the injected fault;
// committed reports whether the engine had already acknowledged the
// commit (the fault then hit outcome delivery, so durability is
// non-negotiable). victimTx is the crashed transaction's id — the only
// id recovery may surface new egress feed records under.
func (x *exec) crashCycle(stage *txStage, fe *fault.Error, committed bool, victimTx uint64) error {
	now := x.eng.Clock().Now()
	x.collectStats()
	// The doomed incarnation's recorder dies with it; save the capture
	// so a failure diagnosed after recovery still shows the pipeline
	// events leading into the crash.
	x.flight = x.eng.FlightEvents(0)
	// Capture the dying engine's published feed and fold the deliverer
	// (it dies with the process; its durable cursor survives).
	x.pollFeed()
	x.teardownDeliverer()
	x.eng.Close()
	x.reg.Disarm()
	x.crashes++
	if err := x.open(now); err != nil {
		return fmt.Errorf("recovery open after %v: %w", fe, err)
	}
	if err := x.eng.RearmTimers(); err != nil {
		return fmt.Errorf("rearm timers after recovery: %w", err)
	}
	if err := timerScheduleErr(x.eng); err != nil {
		return fmt.Errorf("rearm reconciliation after %v: %w", fe, err)
	}
	x.recoveries++
	if rec := x.eng.Store().Recovery(); rec.TornTail {
		x.tornTails++
	}

	postErr := x.stateErr(stage, true)
	preErr := x.stateErr(stage, false)
	post, pre := postErr == nil, preErr == nil
	switch {
	case committed && !post:
		return fmt.Errorf("crash at %v lost an acknowledged commit: %v", fe, postErr)
	case fe.Point == fault.WALAfterSync && !post:
		return fmt.Errorf("crash after WAL sync lost a durable commit: %v", postErr)
	case fe.Point == fault.WALWrite && fe.Tear < 0 && !pre:
		return fmt.Errorf("crash before WAL write surfaced transaction effects: %v", preErr)
	case fe.Point == fault.EgressAppend && !pre:
		return fmt.Errorf("crash at egress append surfaced transaction effects: %v", preErr)
	case post:
		stage.commit()
	case pre:
		// transaction cleanly rolled away by recovery
	default:
		return fmt.Errorf("non-atomic recovery at %v: not post (%v) and not pre (%v)", fe, postErr, preErr)
	}

	if x.sc.Egress {
		if err := x.feedRecoveryErr(fe, post, victimTx); err != nil {
			return err
		}
		if err := x.openDeliverer(); err != nil {
			return fmt.Errorf("reopen deliverer after %v: %w", fe, err)
		}
		x.delvResumes++
	}

	if err := x.eng.VerifyOracle(); err != nil {
		return fmt.Errorf("oracle after recovery from %v: %w", fe, err)
	}
	return x.checkTimerErrs()
}

// stateErr compares the store against the model, with stage applied
// (post=true) or ignored (post=false). nil error means exact match:
// same live objects, same field values, nothing extra.
func (x *exec) stateErr(stage *txStage, post bool) error {
	var touched map[int]*objState
	if stage != nil {
		touched = stage.touched
	}
	return modelStateErr(x.eng.Store(), x.model, touched, post)
}

// modelStateErr is the ledger check shared by the single-engine and
// partitioned executors: the store must hold exactly the model's live
// objects with exactly the model's field values, with the pending
// transaction's updates (touched) applied (post=true) or ignored
// (post=false).
func modelStateErr(st *store.Store, model []*objState, touched map[int]*objState, post bool) error {
	n := len(model)
	for slot := range touched {
		if slot+1 > n {
			n = slot + 1
		}
	}
	slotAt := func(i int) *objState {
		if i < len(model) {
			return model[i]
		}
		return nil
	}
	alive := 0
	for i := 0; i < n; i++ {
		v := slotAt(i)
		if sv, ok := touched[i]; ok {
			if post {
				v = sv
			} else if v == nil && sv.oid != 0 && st.Exists(sv.oid) {
				// Object created by the pending transaction must not
				// survive a pre-state recovery.
				return fmt.Errorf("slot %d: uncommitted object %d survived recovery", i, sv.oid)
			}
		}
		if v == nil || !v.alive {
			// No Exists check for dead slots: after a crash rolls an OID
			// allocation back the store may legally hand the same OID to a
			// later object, so a dead slot's OID can alias a live one.
			// Resurrections are still caught by the Count comparison below.
			continue
		}
		rec, err := st.Get(v.oid)
		if err != nil {
			return fmt.Errorf("slot %d: object %d missing: %w", i, v.oid, err)
		}
		for f, want := range v.fields {
			got, ok := rec.Fields[f]
			if !ok {
				return fmt.Errorf("slot %d: object %d lost field %s", i, v.oid, f)
			}
			if got.AsInt() != want {
				return fmt.Errorf("slot %d: object %d field %s = %d, model %d", i, v.oid, f, got.AsInt(), want)
			}
		}
		alive++
	}
	if c := st.Count(); c != alive {
		return fmt.Errorf("store holds %d objects, model %d", c, alive)
	}
	return nil
}

// timerScheduleErr verifies the engine's live timer schedule against
// its store: every active trigger instance whose spec carries a
// non-'after' timer requirement must occupy exactly one schedule
// entry ('after' one-shots are excluded from the schedule by
// contract — their per-(object,trigger) anchors are not derivable
// from durable state alone). Run after RearmTimers this proves
// reconciliation rebuilt the cohorts from the recovered store; run at
// end of script it proves the churn of activation, deactivation,
// deletion and aborts converged to exactly the active instances.
func timerScheduleErr(e *engine.Engine) error {
	var want []string
	for _, oid := range e.Store().OIDs() {
		rec, err := e.Store().Get(oid)
		if err != nil {
			continue
		}
		c := e.Class(rec.Class)
		if c == nil {
			return fmt.Errorf("object %d has unregistered class %q", oid, rec.Class)
		}
		for name, act := range rec.Triggers {
			if !act.Active {
				continue
			}
			tr := c.Trigger(name)
			if tr == nil {
				return fmt.Errorf("object %d holds unknown trigger %q", oid, name)
			}
			for _, req := range tr.Res.Timers {
				if req.Mode == evlang.TimeAfter {
					continue
				}
				want = append(want, fmt.Sprintf("%d %s %s", oid, req.Key, name))
			}
		}
	}
	sort.Strings(want)
	if got := e.TimerSchedule(); fmt.Sprint(got) != fmt.Sprint(want) {
		return fmt.Errorf("timer schedule diverged from store:\n got:  %v\n want: %v", got, want)
	}
	return nil
}

// checkTimerErrs drains newly recorded timer-delivery errors.
// Injected faults landing in timer or outcome-delivery system
// transactions are expected (the system transaction rolls back
// cleanly); anything else fails the run.
func (x *exec) checkTimerErrs() error {
	errs := x.eng.TimerErrors()
	for _, err := range errs[x.timerErrSeen:] {
		if errors.Is(err, fault.ErrInjected) {
			x.injectedTimerErrs++
			continue
		}
		return fmt.Errorf("timer delivery: %w", err)
	}
	x.timerErrSeen = len(errs)
	return nil
}

// collectStats folds the current incarnation's activity counters into
// the run total (registration-state and process-global fields are
// deliberately excluded; FaultsInjected is taken from the registry at
// the end of the run since it spans incarnations already).
func (x *exec) collectStats() {
	s := x.eng.Stats()
	x.stats.TxBegun += s.TxBegun
	x.stats.TxCommitted += s.TxCommitted
	x.stats.TxAborted += s.TxAborted
	x.stats.SystemTx += s.SystemTx
	x.stats.Happenings += s.Happenings
	x.stats.Steps += s.Steps
	x.stats.MaskEvals += s.MaskEvals
	x.stats.Firings += s.Firings
	x.stats.TimerPosts += s.TimerPosts
	x.stats.TcompleteRounds += s.TcompleteRounds
	x.stats.ShadowChecks += s.ShadowChecks
	x.stats.FlightEvents += s.FlightEvents
	x.stats.ProvenanceSteps += s.ProvenanceSteps
}

// failFlight is the flight-recorder dump attached to a Failure: the
// pre-crash capture when the failing step crashed an incarnation,
// otherwise the live engine's recent events.
func (x *exec) failFlight() []obs.FlightEvent {
	if x.flight != nil {
		return x.flight
	}
	if x.eng == nil {
		return nil
	}
	return x.eng.FlightEvents(0)
}

// fingerprint digests everything a deterministic run pins down.
func (x *exec) fingerprint() string {
	h := sha256.New()
	for _, f := range x.firings {
		fmt.Fprintln(h, f)
	}
	for i, v := range x.model {
		if v == nil || !v.alive {
			fmt.Fprintf(h, "o%d: dead\n", i)
			continue
		}
		fmt.Fprintf(h, "o%d: oid=%d class=%s", i, v.oid, classDefs[v.class].name)
		for _, fd := range classDefs[v.class].fields {
			fmt.Fprintf(h, " %s=%d", fd.Name, v.fields[fd.Name])
		}
		fmt.Fprintln(h)
	}
	fmt.Fprintf(h, "%+v\n", x.stats)
	fmt.Fprintf(h, "crashes=%d recoveries=%d torn=%d timererrs=%d\n",
		x.crashes, x.recoveries, x.tornTails, x.injectedTimerErrs)
	if x.sc.Egress {
		fmt.Fprintf(h, "egress: feed=%d effects=%d delivered=%d redelivered=%d gaveup=%d cursorerrs=%d dcrash=%d dresume=%d\n",
			len(x.feedSeen), len(x.effects), x.delivered, x.redelivered,
			x.gaveUp, x.cursorErrs, x.delvCrashes, x.delvResumes)
	}
	fmt.Fprintf(h, "%+v\n", x.eng.Metrics().Snapshot().Canonical())
	return hex.EncodeToString(h.Sum(nil))
}
