package sim

import (
	"testing"

	"ode/internal/fault"
)

// egressScript builds a persistent egress-mode hand script (standard
// init transaction, then the given steps).
func egressScript(steps ...Step) *Script {
	sc := handScript(true, steps...)
	sc.Egress = true
	return sc
}

// TestEgressShort is the CI smoke for the egress harness: a handful of
// seeds through the full persistent + faults + egress mode, each run
// ending in the exactly-once ledger oracle. This joins TestSimShort in
// the sim-short CI job (run under -race).
func TestEgressShort(t *testing.T) {
	base := t.TempDir()
	for seed := int64(1); seed <= 4; seed++ {
		cfg := Defaults(seed)
		cfg.Persistent = true
		cfg.Faults = true
		cfg.Egress = true
		res, err := Run(cfg, base, true)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.EgressFeed == 0 {
			t.Errorf("seed %d: empty egress feed — workload too weak to test delivery", seed)
		}
		if res.EgressEffects != res.EgressFeed {
			t.Errorf("seed %d: %d effects for %d feed records", seed, res.EgressEffects, res.EgressFeed)
		}
		if res.EgressDelivered < uint64(res.EgressFeed) {
			t.Errorf("seed %d: delivered %d < feed %d", seed, res.EgressDelivered, res.EgressFeed)
		}
	}
}

// TestEgressDeterminism: the same egress script executed twice yields
// bit-identical fingerprints — the fingerprint includes the feed
// length, ledger size and delivery churn, so crash/retry/resume
// scheduling is pinned too.
func TestEgressDeterminism(t *testing.T) {
	cfg := Defaults(42)
	cfg.Steps = 60
	cfg.Persistent = true
	cfg.Faults = true
	cfg.Egress = true
	sc := Generate(cfg)
	a, err := ExecuteTemp(sc, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExecuteTemp(sc, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("same script, different runs:\n a=%s (feed %d, redelivered %d)\n b=%s (feed %d, redelivered %d)",
			a.Fingerprint, a.EgressFeed, a.EgressRedelivered,
			b.Fingerprint, b.EgressFeed, b.EgressRedelivered)
	}
	if a.EgressFeed == 0 {
		t.Error("determinism check is vacuous: empty feed")
	}
}

// --- per-fault-point contracts ---------------------------------------------

// TestEgressFaultAppend: the append fault fires inside the victim's
// LogCommit before anything reaches the WAL. The executor's contracts
// require a crash cycle whose recovery lands pre with zero feed
// extras; the test pins that the cycle actually happened and the
// ledger still balanced.
func TestEgressFaultAppend(t *testing.T) {
	sc := egressScript(
		Step{Kind: StepTx, Ops: []Op{dep(0, 100)}},
		Step{Kind: StepFault, Ops: []Op{wdr(0, 60)},
			Fault: FaultSpec{Point: fault.EgressAppend, Tear: -1}},
		Step{Kind: StepTx, Ops: []Op{wdr(0, 70)}},
	)
	res, err := ExecuteTemp(sc, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 1 || res.Recoveries != 1 {
		t.Fatalf("want 1 crash+recovery, got %d/%d", res.Crashes, res.Recoveries)
	}
	if res.InjectedFaults == 0 {
		t.Fatal("append fault never fired")
	}
	if res.EgressEffects != res.EgressFeed {
		t.Fatalf("ledger unbalanced: %d effects, %d feed records", res.EgressEffects, res.EgressFeed)
	}
}

// TestEgressFaultCursorTear: a torn cursor save is survivable (the
// delivery itself succeeded), and after the consumer crashes the
// resumed deliverer must discard the torn tail, restart from the last
// intact entry, and redeliver — absorbed by the ledger dedupe.
func TestEgressFaultCursorTear(t *testing.T) {
	// Keep only Masked active on slot 0 so the victim commits exactly
	// one feed record: its torn cursor save is then the last write
	// before the consumer crash, and the resumed deliverer must
	// discard it and redeliver.
	var deacts []Op
	for _, tr := range []string{"Seq", "Rel", "Cnt", "Chz", "Neg", "FaW", "Deep", "Lim", "AbortBig", "Timer", "Beat"} {
		deacts = append(deacts, Op{Kind: OpDeactivate, Obj: 0, Trigger: tr})
	}
	sc := egressScript(
		Step{Kind: StepTx, Ops: []Op{dep(0, 100)}},
		Step{Kind: StepTx, Ops: deacts},
		Step{Kind: StepFault, Ops: []Op{wdr(0, 60)},
			Fault: FaultSpec{Point: fault.EgressCursor, Tear: 3}},
		Step{Kind: StepTx, Ops: []Op{{Kind: OpCrashDeliverer}}},
		Step{Kind: StepTx, Ops: []Op{{Kind: OpResumeConsumer}}},
		Step{Kind: StepTx, Ops: []Op{wdr(0, 70)}},
	)
	res, err := ExecuteTemp(sc, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.EgressCursorErrs == 0 {
		t.Fatal("cursor fault never fired")
	}
	if res.DelivererCrashes != 1 || res.DelivererResumes == 0 {
		t.Fatalf("want 1 deliverer crash and a resume, got %d/%d", res.DelivererCrashes, res.DelivererResumes)
	}
	if res.EgressRedelivered == 0 {
		t.Fatal("resume from a stale cursor should have redelivered")
	}
	if res.EgressEffects != res.EgressFeed {
		t.Fatalf("ledger unbalanced: %d effects, %d feed records", res.EgressEffects, res.EgressFeed)
	}
}

// TestEgressFaultDeliverRetry: two consecutive send failures stay
// within the four bounded attempts — delivery succeeds inside the
// pass, no stall.
func TestEgressFaultDeliverRetry(t *testing.T) {
	sc := egressScript(
		Step{Kind: StepTx, Ops: []Op{dep(0, 100)}},
		Step{Kind: StepFault, Ops: []Op{wdr(0, 60)},
			Fault: FaultSpec{Point: fault.EgressDeliver, Tear: -1, Delay: 1}},
	)
	res, err := ExecuteTemp(sc, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.InjectedFaults < 2 {
		t.Fatalf("want 2 injected send failures, got %d", res.InjectedFaults)
	}
	if res.EgressGaveUp != 0 {
		t.Fatalf("retries within the bound must not give up, got %d", res.EgressGaveUp)
	}
	if res.EgressEffects != res.EgressFeed || res.EgressFeed == 0 {
		t.Fatalf("ledger unbalanced: %d effects, %d feed records", res.EgressEffects, res.EgressFeed)
	}
}

// TestEgressFaultDeliverGaveUp: failing more sends than MaxAttempts
// makes the pass give up and stall at the record — never skip — and a
// later pump (faults disarmed) delivers it.
func TestEgressFaultDeliverGaveUp(t *testing.T) {
	sc := egressScript(
		Step{Kind: StepTx, Ops: []Op{dep(0, 100)}},
		Step{Kind: StepFault, Ops: []Op{wdr(0, 60)},
			Fault: FaultSpec{Point: fault.EgressDeliver, Tear: -1, Delay: 5}},
		Step{Kind: StepTx, Ops: []Op{wdr(0, 70)}},
	)
	res, err := ExecuteTemp(sc, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.EgressGaveUp == 0 {
		t.Fatal("deliver fault should have exhausted the bounded retries")
	}
	if res.EgressEffects != res.EgressFeed || res.EgressFeed == 0 {
		t.Fatalf("stall must not lose the record: %d effects, %d feed records",
			res.EgressEffects, res.EgressFeed)
	}
}

// TestEgressEngineCrashResume: a WAL crash after durability kills the
// engine incarnation and the deliverer with it; recovery may surface
// the victim's feed records as tail extras, and the rebuilt deliverer
// must resume from its durable cursor and deliver them exactly once.
func TestEgressEngineCrashResume(t *testing.T) {
	sc := egressScript(
		Step{Kind: StepTx, Ops: []Op{dep(0, 100)}},
		Step{Kind: StepFault, Ops: []Op{wdr(0, 60)},
			Fault: FaultSpec{Point: fault.WALAfterSync, Tear: -1}},
		Step{Kind: StepTx, Ops: []Op{wdr(0, 70)}},
	)
	res, err := ExecuteTemp(sc, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 1 {
		t.Fatalf("want 1 crash, got %d", res.Crashes)
	}
	if res.DelivererResumes == 0 {
		t.Fatal("engine crash must rebuild the deliverer")
	}
	if res.EgressEffects != res.EgressFeed || res.EgressFeed == 0 {
		t.Fatalf("ledger unbalanced: %d effects, %d feed records", res.EgressEffects, res.EgressFeed)
	}
}

// TestEgressVolatile: egress mode without a WAL — deliverer crashes
// lose the in-memory cursor entirely, so resumes redeliver from the
// beginning of the feed and the ledger dedupe absorbs all of it.
func TestEgressVolatile(t *testing.T) {
	sc := handScript(false,
		Step{Kind: StepTx, Ops: []Op{wdr(0, 60)}},
		Step{Kind: StepTx, Ops: []Op{{Kind: OpCrashDeliverer}}},
		Step{Kind: StepTx, Ops: []Op{wdr(0, 70)}},
		Step{Kind: StepTx, Ops: []Op{{Kind: OpResumeConsumer}}},
	)
	sc.Egress = true
	res, err := ExecuteTemp(sc, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.EgressRedelivered == 0 {
		t.Fatal("cursorless resume should have redelivered the whole feed")
	}
	if res.EgressEffects != res.EgressFeed || res.EgressFeed == 0 {
		t.Fatalf("ledger unbalanced: %d effects, %d feed records", res.EgressEffects, res.EgressFeed)
	}
}

// TestEgressStepsGenerated pins that egress campaigns actually cover
// all three egress fault points and both deliverer lifecycle ops
// (guards against the generator silently dropping them).
func TestEgressStepsGenerated(t *testing.T) {
	points := map[fault.Point]int{}
	ops := map[OpKind]int{}
	for seed := int64(0); seed < 20; seed++ {
		cfg := Defaults(seed)
		cfg.Persistent = true
		cfg.Faults = true
		cfg.Egress = true
		cfg.Steps = 60
		for _, st := range Generate(cfg).Steps {
			if st.Kind == StepFault {
				points[st.Fault.Point]++
			}
			for _, op := range st.Ops {
				if op.Kind == OpCrashDeliverer || op.Kind == OpResumeConsumer {
					ops[op.Kind]++
				}
			}
		}
	}
	for _, p := range []fault.Point{fault.EgressAppend, fault.EgressCursor, fault.EgressDeliver} {
		if points[p] == 0 {
			t.Errorf("generated campaigns never arm %v: %v", p, points)
		}
	}
	if ops[OpCrashDeliverer] == 0 || ops[OpResumeConsumer] == 0 {
		t.Errorf("generated campaigns never crash/resume the deliverer: %v", ops)
	}
}

// TestEgressTorture is the seeded exactly-once campaign: many
// generated runs through the full persistent + faults + egress mode,
// each crashing the engine and/or the deliverer at the new fault
// points, each ending in the ledger oracle. Every iteration that
// passes has proven zero duplicate and zero lost effects for its
// schedule. The full (non -short) run covers 1000 seeds.
func TestEgressTorture(t *testing.T) {
	iters := 1000
	if testing.Short() {
		iters = 60
	}
	cfg := Defaults(0)
	cfg.Persistent = true
	cfg.Faults = true
	cfg.Egress = true
	cfg.Steps = 25
	sum, fails := Torture(TortureOpts{Iters: iters, Seed: 7000, Cfg: cfg, Base: t.TempDir(), MaxFailures: 3})
	for _, f := range fails {
		t.Errorf("seed %d: %v", f.Seed, f.Err)
	}
	if sum.Failures != 0 {
		t.Fatalf("campaign failed: %+v", sum)
	}
	if sum.EgressEffects == 0 || sum.Crashes == 0 || sum.DelivererCrashes == 0 {
		t.Fatalf("campaign too weak to prove anything: %+v", sum)
	}
	t.Logf("%d iters: %d effects, %d redelivered, %d gave-up stalls, %d engine crashes, %d deliverer crashes",
		sum.Iters, sum.EgressEffects, sum.Redelivered, sum.GaveUp, sum.Crashes, sum.DelivererCrashes)
}
