package ode

import (
	"fmt"

	"ode/internal/compile"
	"ode/internal/evlang"
	"ode/internal/schema"
)

// Automaton describes a compiled trigger automaton: the §5 artifact
// shared by all objects of a class, with one integer of state per
// object per activation.
type Automaton struct {
	Trigger string
	States  int
	Symbols int
	// TableBytes is the footprint an unshared fat table would occupy
	// (states × symbols × 8 bytes) — the §5 baseline.
	TableBytes int
	// CompactBytes is the resident footprint of the hash-consed compact
	// table actually stepped at runtime (row-deduplicated, narrow cells);
	// shared across every trigger whose expression is structurally
	// equivalent. Zero for standalone CompileEvent probes.
	CompactBytes int
	// PerObjectBytes is the per-object detection state: one machine
	// word (§5: "only a single (integer) variable is required").
	PerObjectBytes int

	dfa   dfaLike
	names func(int) string
}

type dfaLike interface {
	Dot(name string, symbolName func(int) string) string
	Table(symbolName func(int) string) string
}

// Dot renders the automaton in Graphviz DOT format with symbolic edge
// labels.
func (a *Automaton) Dot() string { return a.dfa.Dot(a.Trigger, a.names) }

// Table renders the transition table as text.
func (a *Automaton) Table() string { return a.dfa.Table(a.names) }

// Inspect compiles the triggers of a registered class and reports
// their automata. It is the introspection surface behind cmd/eventc.
func (db *Database) Inspect(class string) ([]*Automaton, error) {
	c := db.eng.Class(class)
	if c == nil {
		return nil, fmt.Errorf("ode: unregistered class %q", class)
	}
	out := make([]*Automaton, 0, len(c.Triggers))
	alpha := c.Res.Alphabet
	for _, t := range c.Triggers {
		oracle := t.Oracle()
		out = append(out, &Automaton{
			Trigger:        t.Res.Name,
			States:         oracle.NumStates,
			Symbols:        oracle.NumSymbols,
			TableBytes:     oracle.NumStates * oracle.NumSymbols * 8,
			CompactBytes:   t.Auto.Tab.Compact.Bytes(),
			PerObjectBytes: 8,
			dfa:            oracle,
			names:          alpha.SymbolName,
		})
	}
	return out, nil
}

// CompileEvent resolves and compiles a standalone event expression
// against a class schema, without registering anything — a tool for
// exploring the §5 pipeline. The returned automaton is minimized.
func CompileEvent(cls *schema.Class, eventSrc string, defines *Defines) (*Automaton, error) {
	probe := *cls
	probe.Triggers = []schema.Trigger{{Name: "probe", Event: eventSrc}}
	var ps *evlang.Parser
	if defines != nil {
		ps = defines.ps
		ps.Methods = map[string]bool{}
		for _, m := range cls.Methods {
			ps.Methods[m.Name] = true
		}
	} else {
		ps = evlang.ForClass(&probe)
	}
	res, err := evlang.ResolveClass(&probe, ps)
	if err != nil {
		return nil, err
	}
	tr := res.Triggers[0]
	dfa := compile.Compile(tr.Expr, res.Alphabet.NumSymbols)
	return &Automaton{
		Trigger:        eventSrc,
		States:         dfa.NumStates,
		Symbols:        dfa.NumSymbols,
		TableBytes:     dfa.NumStates * dfa.NumSymbols * 8,
		PerObjectBytes: 8,
		dfa:            dfa,
		names:          res.Alphabet.SymbolName,
	}, nil
}

// Class is re-exported schema metadata for CompileEvent users.
type Class = schema.Class

// Field is re-exported schema field metadata.
type Field = schema.Field

// Method is re-exported schema method metadata.
type Method = schema.Method

// Access modes for schema methods.
const (
	// ModeRead marks a read-only member function.
	ModeRead = schema.ModeRead
	// ModeUpdate marks an updating member function.
	ModeUpdate = schema.ModeUpdate
)
