// odesh is an interactive shell for exploring Ode composite events: it
// defines classes with auto-generated accessor methods, declares
// triggers in the paper's syntax, posts events through method calls,
// drives the virtual clock, and shows automaton states as they move.
//
// Usage:
//
//	odesh            # interactive
//	odesh script.ode # run a script (same commands), then exit
//
// Commands (try `help` inside the shell):
//
//	defclass account balance:int=1000 owner:string
//	defmethod account audit read
//	deftrigger account Large(): perpetual after set_balance(v) && v < 100 ==> print
//	register account
//	new account                      → @1
//	activate @1 Large
//	call @1 set_balance 50           → [Large] fired at @1
//	advance 2h30m
//	state @1 Large
//	history @1
package main

import (
	"bufio"
	"fmt"
	"os"
)

func main() {
	sh, err := newShell(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odesh:", err)
		os.Exit(1)
	}
	defer sh.close()

	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "odesh:", err)
			os.Exit(1)
		}
		defer f.Close()
		sh.run(bufio.NewScanner(f), false)
		return
	}
	fmt.Println("odesh — Ode composite-event shell (type 'help')")
	sh.run(bufio.NewScanner(os.Stdin), true)
}
