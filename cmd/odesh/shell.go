package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"ode"
)

// pendingClass is a class under construction (before register).
type pendingClass struct {
	builder  *ode.ClassBuilder
	fields   []string
	methods  []string
	triggers []string
}

type shell struct {
	db      *ode.Database
	out     io.Writer
	pending map[string]*pendingClass
	defines *ode.Defines
	tx      *ode.Tx // explicit transaction, if open
}

func newShell(out io.Writer) (*shell, error) {
	db, err := ode.Open(ode.Options{
		Start:           time.Date(2026, 7, 6, 8, 0, 0, 0, time.UTC),
		RecordHistories: 64,
	})
	if err != nil {
		return nil, err
	}
	return &shell{
		db:      db,
		out:     out,
		pending: map[string]*pendingClass{},
		defines: ode.NewDefines(),
	}, nil
}

func (sh *shell) close() { sh.db.Close() }

func (sh *shell) run(sc *bufio.Scanner, interactive bool) {
	for {
		if interactive {
			fmt.Fprint(sh.out, "ode> ")
		}
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		if err := sh.exec(line); err != nil {
			fmt.Fprintln(sh.out, "error:", err)
		}
	}
}

func (sh *shell) exec(line string) error {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch cmd {
	case "help":
		sh.help()
		return nil
	case "defclass":
		return sh.defclass(rest)
	case "defmethod":
		return sh.defmethod(rest)
	case "deftrigger":
		return sh.deftrigger(rest)
	case "define":
		name, src, ok := strings.Cut(rest, "=")
		if !ok {
			return fmt.Errorf("usage: define NAME=EVENT")
		}
		return sh.safeDefine(strings.TrimSpace(name), strings.TrimSpace(src))
	case "register":
		return sh.register(rest)
	case "new":
		return sh.newObject(rest)
	case "call":
		return sh.call(rest)
	case "get":
		return sh.get(rest)
	case "set":
		return sh.set(rest)
	case "activate", "deactivate":
		return sh.arm(cmd, rest)
	case "begin":
		if sh.tx != nil {
			return fmt.Errorf("a transaction is already open")
		}
		sh.tx = sh.db.Begin()
		fmt.Fprintln(sh.out, "transaction open")
		return nil
	case "commit":
		if sh.tx == nil {
			return fmt.Errorf("no open transaction")
		}
		err := sh.tx.Commit()
		sh.tx = nil
		if err == nil {
			fmt.Fprintln(sh.out, "committed")
		}
		return err
	case "abort":
		if sh.tx == nil {
			return fmt.Errorf("no open transaction")
		}
		err := sh.tx.Abort()
		sh.tx = nil
		if err == nil {
			fmt.Fprintln(sh.out, "aborted")
		}
		return err
	case "advance":
		d, err := time.ParseDuration(rest)
		if err != nil {
			return err
		}
		if sh.tx != nil {
			return fmt.Errorf("close the transaction before advancing the clock")
		}
		sh.db.Clock().Advance(d)
		fmt.Fprintln(sh.out, "clock:", sh.db.Clock().Now().Format(time.RFC3339))
		return nil
	case "now":
		fmt.Fprintln(sh.out, sh.db.Clock().Now().Format(time.RFC3339))
		return nil
	case "state":
		return sh.state(rest)
	case "history":
		return sh.historyCmd(rest)
	case "automata":
		return sh.automata(rest)
	case ".trace":
		return sh.trace(rest)
	case ".stats":
		return sh.stats()
	case ".why":
		return sh.why(rest)
	case ".feed":
		return sh.feed(rest)
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

func (sh *shell) safeDefine(name, src string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	sh.defines.Add(name, src)
	return nil
}

func (sh *shell) help() {
	fmt.Fprint(sh.out, `commands:
  defclass NAME field:kind[=default] ...   declare a class (kinds: int float bool string id)
      every field gets auto methods set_<field>(v) [update] and get_<field>() [read]
  defmethod NAME method read|update [p:kind ...]   declare an extra (no-op) method
  deftrigger NAME DECL       declare a trigger, e.g.
      deftrigger account Low(): perpetual balance < 100 ==> print
      actions: print | tabort | someMethod()
  define NAME=EVENT          #define-style event abbreviation
  register NAME              compile the class (triggers become automata)
  new NAME [field=value ...] create an object            → @oid
  call @oid METHOD [args]    invoke a member function (posts events)
  get/set @oid FIELD [value] raw field access (no events)
  activate/deactivate @oid TRIGGER [args]
  begin | commit | abort     explicit transaction (otherwise one per command)
  advance DUR | now          virtual clock (e.g. advance 2h30m)
  state @oid TRIGGER         automaton state (one integer, paper §5)
  history @oid               recent happenings
  automata NAME              trigger automaton sizes for a class
  .trace on|off|show [N]     pipeline tracing (show prints the last N events, default 20)
  .stats                     engine counters and per-trigger metrics
  .why @oid TRIGGER          firing provenance: the happening chain behind the
                             trigger's current state / most recent firing
  .feed [after [max]]        durable firing-egress feed (records after the
                             given position; max defaults to 20)
  quit
`)
}

func parseKind(s string) (ode.Kind, error) {
	switch s {
	case "int":
		return ode.KindInt, nil
	case "float":
		return ode.KindFloat, nil
	case "bool":
		return ode.KindBool, nil
	case "string":
		return ode.KindString, nil
	case "id":
		return ode.KindID, nil
	}
	return ode.KindNull, fmt.Errorf("unknown kind %q", s)
}

func parseValue(kind ode.Kind, s string) (ode.Value, error) {
	switch kind {
	case ode.KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		return ode.Int(i), err
	case ode.KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		return ode.Float(f), err
	case ode.KindBool:
		b, err := strconv.ParseBool(s)
		return ode.Bool(b), err
	case ode.KindString:
		return ode.Str(s), nil
	case ode.KindID:
		oid, err := parseOID(s)
		return ode.Ref(oid), err
	}
	return ode.Null(), fmt.Errorf("cannot parse %q", s)
}

// guessValue infers a literal's kind.
func guessValue(s string) ode.Value {
	if oid, err := parseOID(s); err == nil {
		return ode.Ref(oid)
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return ode.Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return ode.Float(f)
	}
	if b, err := strconv.ParseBool(s); err == nil {
		return ode.Bool(b)
	}
	return ode.Str(s)
}

func parseOID(s string) (ode.OID, error) {
	if !strings.HasPrefix(s, "@") {
		return 0, fmt.Errorf("object ids look like @1")
	}
	n, err := strconv.ParseUint(s[1:], 10, 64)
	return ode.OID(n), err
}

func (sh *shell) defclass(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return fmt.Errorf("usage: defclass NAME field:kind[=default] ...")
	}
	name := fields[0]
	if _, dup := sh.pending[name]; dup {
		return fmt.Errorf("class %s already being defined", name)
	}
	b := sh.db.NewClass(name).Defines(sh.defines)
	pc := &pendingClass{builder: b}
	for _, f := range fields[1:] {
		spec, deflt, hasDefault := strings.Cut(f, "=")
		fname, kindName, ok := strings.Cut(spec, ":")
		if !ok {
			return fmt.Errorf("field %q: want name:kind[=default]", f)
		}
		kind, err := parseKind(kindName)
		if err != nil {
			return err
		}
		dv := ode.Null()
		if hasDefault {
			if dv, err = parseValue(kind, deflt); err != nil {
				return err
			}
		}
		b.Field(fname, kind, dv)
		// Auto accessor methods make every field observable as events.
		field := fname
		b.Update("set_"+field, func(ctx *ode.MethodCtx) (ode.Value, error) {
			return ode.Null(), ctx.Set(field, ctx.Arg("v"))
		}, ode.P("v", kind))
		b.Read("get_"+field, func(ctx *ode.MethodCtx) (ode.Value, error) {
			return ctx.Get(field)
		})
		pc.fields = append(pc.fields, fname)
	}
	sh.pending[name] = pc
	fmt.Fprintf(sh.out, "class %s: %d field(s); register when done\n", name, len(pc.fields))
	return nil
}

func (sh *shell) defmethod(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 3 {
		return fmt.Errorf("usage: defmethod CLASS METHOD read|update [p:kind ...]")
	}
	pc, ok := sh.pending[fields[0]]
	if !ok {
		return fmt.Errorf("no pending class %q", fields[0])
	}
	method := fields[1]
	var params []ode.Param
	for _, p := range fields[3:] {
		pname, kindName, ok := strings.Cut(p, ":")
		if !ok {
			return fmt.Errorf("param %q: want name:kind", p)
		}
		kind, err := parseKind(kindName)
		if err != nil {
			return err
		}
		params = append(params, ode.P(pname, kind))
	}
	impl := func(ctx *ode.MethodCtx) (ode.Value, error) { return ode.Null(), nil }
	switch fields[2] {
	case "read":
		pc.builder.Read(method, impl, params...)
	case "update":
		pc.builder.Update(method, impl, params...)
	default:
		return fmt.Errorf("mode must be read or update")
	}
	pc.methods = append(pc.methods, method)
	return nil
}

func (sh *shell) deftrigger(rest string) error {
	name, decl, ok := strings.Cut(rest, " ")
	if !ok {
		return fmt.Errorf("usage: deftrigger CLASS DECL")
	}
	pc, found := sh.pending[name]
	if !found {
		return fmt.Errorf("no pending class %q", name)
	}
	decl = strings.TrimSpace(decl)
	var action ode.ActionFunc
	if strings.HasSuffix(decl, "==> print") {
		decl = strings.TrimSuffix(decl, "print") + "printAction"
		action = func(ctx *ode.ActionCtx) error {
			fmt.Fprintf(sh.out, "  [%s] fired at @%d\n", ctx.Trigger, ctx.Self)
			return nil
		}
	}
	pc.builder.Trigger(decl, action)
	pc.triggers = append(pc.triggers, decl)
	return nil
}

func (sh *shell) register(rest string) error {
	name := strings.TrimSpace(rest)
	pc, ok := sh.pending[name]
	if !ok {
		return fmt.Errorf("no pending class %q", name)
	}
	if err := pc.builder.Register(); err != nil {
		delete(sh.pending, name)
		return err
	}
	delete(sh.pending, name)
	autos, err := sh.db.Inspect(name)
	if err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "class %s registered; %d trigger automaton(a):\n", name, len(autos))
	for _, a := range autos {
		fmt.Fprintf(sh.out, "  %-12s %3d states × %d symbols\n", a.Trigger, a.States, a.Symbols)
	}
	return nil
}

// withTx runs fn in the open explicit transaction or a one-shot one.
func (sh *shell) withTx(fn func(tx *ode.Tx) error) error {
	if sh.tx != nil {
		return fn(sh.tx)
	}
	return sh.db.Transact(fn)
}

func (sh *shell) newObject(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return fmt.Errorf("usage: new CLASS [field=value ...]")
	}
	init := map[string]ode.Value{}
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("want field=value, got %q", f)
		}
		init[k] = guessValue(v)
	}
	var oid ode.OID
	err := sh.withTx(func(tx *ode.Tx) error {
		var err error
		oid, err = tx.NewObject(fields[0], init)
		return err
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "@%d\n", oid)
	return nil
}

func (sh *shell) call(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return fmt.Errorf("usage: call @oid METHOD [args]")
	}
	oid, err := parseOID(fields[0])
	if err != nil {
		return err
	}
	args := make([]ode.Value, len(fields)-2)
	for i, a := range fields[2:] {
		args[i] = guessValue(a)
	}
	var out ode.Value
	err = sh.withTx(func(tx *ode.Tx) error {
		var err error
		out, err = tx.Call(oid, fields[1], args...)
		return err
	})
	if err != nil {
		return err
	}
	if !out.IsNull() {
		fmt.Fprintln(sh.out, out)
	}
	return nil
}

func (sh *shell) get(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		return fmt.Errorf("usage: get @oid FIELD")
	}
	oid, err := parseOID(fields[0])
	if err != nil {
		return err
	}
	var v ode.Value
	if err := sh.withTx(func(tx *ode.Tx) error {
		var err error
		v, err = tx.Get(oid, fields[1])
		return err
	}); err != nil {
		return err
	}
	fmt.Fprintln(sh.out, v)
	return nil
}

func (sh *shell) set(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) != 3 {
		return fmt.Errorf("usage: set @oid FIELD VALUE")
	}
	oid, err := parseOID(fields[0])
	if err != nil {
		return err
	}
	return sh.withTx(func(tx *ode.Tx) error {
		return tx.Set(oid, fields[1], guessValue(fields[2]))
	})
}

func (sh *shell) arm(cmd, rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return fmt.Errorf("usage: %s @oid TRIGGER [args]", cmd)
	}
	oid, err := parseOID(fields[0])
	if err != nil {
		return err
	}
	return sh.withTx(func(tx *ode.Tx) error {
		if cmd == "deactivate" {
			return tx.Deactivate(oid, fields[1])
		}
		args := make([]ode.Value, len(fields)-2)
		for i, a := range fields[2:] {
			args[i] = guessValue(a)
		}
		return tx.Activate(oid, fields[1], args...)
	})
}

func (sh *shell) state(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		return fmt.Errorf("usage: state @oid TRIGGER")
	}
	oid, err := parseOID(fields[0])
	if err != nil {
		return err
	}
	state, active, err := sh.db.TriggerState(oid, fields[1])
	if err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "state=%d active=%v\n", state, active)
	return nil
}

func (sh *shell) historyCmd(rest string) error {
	oid, err := parseOID(strings.TrimSpace(rest))
	if err != nil {
		return err
	}
	log := sh.db.History(oid)
	if log == nil {
		return fmt.Errorf("no history recorded for @%d", oid)
	}
	for _, e := range log.Tail(20) {
		fmt.Fprintf(sh.out, "  %4d  %-24s tx=%d\n", e.Seq, e.Kind, e.TxID)
	}
	return nil
}

func (sh *shell) trace(rest string) error {
	mode, arg, _ := strings.Cut(strings.TrimSpace(rest), " ")
	switch mode {
	case "on":
		sh.db.EnableTracing(0)
		fmt.Fprintln(sh.out, "tracing on")
		return nil
	case "off":
		sh.db.DisableTracing()
		fmt.Fprintln(sh.out, "tracing off")
		return nil
	case "show":
		if !sh.db.TracingEnabled() {
			return fmt.Errorf("tracing is off (.trace on)")
		}
		last := 20
		if arg = strings.TrimSpace(arg); arg != "" {
			n, err := strconv.Atoi(arg)
			if err != nil {
				return fmt.Errorf("bad count %q", arg)
			}
			last = n
		}
		for _, ev := range sh.db.TraceEvents(last) {
			fmt.Fprintf(sh.out, "  %5d %-9s", ev.Seq, ev.Stage)
			if ev.TxID != 0 {
				fmt.Fprintf(sh.out, " tx=%d", ev.TxID)
			}
			if ev.OID != 0 {
				fmt.Fprintf(sh.out, " @%d", ev.OID)
			}
			if ev.Trigger != "" {
				fmt.Fprintf(sh.out, " %s", ev.Trigger)
			}
			if ev.Kind != "" {
				fmt.Fprintf(sh.out, " %s", ev.Kind)
			}
			switch ev.Stage {
			case ode.StageMask:
				fmt.Fprintf(sh.out, " bits=%#x→%#x ok=%v", ev.From, ev.To, ev.OK)
			case ode.StageStep:
				fmt.Fprintf(sh.out, " %d→%d accept=%v", ev.From, ev.To, ev.OK)
			case ode.StageFire:
				fmt.Fprintf(sh.out, " %s ok=%v", time.Duration(ev.DurNs), ev.OK)
			case ode.StageTcomplete:
				fmt.Fprintf(sh.out, " round=%d fired=%v", ev.From, ev.OK)
			}
			if ev.Err != "" {
				fmt.Fprintf(sh.out, " err=%s", ev.Err)
			}
			fmt.Fprintln(sh.out)
		}
		return nil
	}
	return fmt.Errorf("usage: .trace on|off|show [N]")
}

func (sh *shell) stats() error {
	s := sh.db.Stats()
	fmt.Fprintf(sh.out, "tx: %d begun, %d committed, %d aborted (%d system)\n",
		s.TxBegun, s.TxCommitted, s.TxAborted, s.SystemTx)
	fmt.Fprintf(sh.out, "pipeline: %d happenings, %d mask evals, %d steps, %d firings\n",
		s.Happenings, s.MaskEvals, s.Steps, s.Firings)
	fmt.Fprintf(sh.out, "timers: %d posted; tcomplete rounds: %d; shadow checks: %d\n",
		s.TimerPosts, s.TcompleteRounds, s.ShadowChecks)
	snap := sh.db.Metrics()
	for _, ts := range snap.Triggers {
		fmt.Fprintf(sh.out, "  %s.%s: %d firings, %d steps, %d/%d masks true",
			ts.Class, ts.Trigger, ts.Firings, ts.Steps, ts.MaskEvals-ts.MaskFalse, ts.MaskEvals)
		if ts.Latency.Count > 0 {
			fmt.Fprintf(sh.out, ", action mean %s max %s",
				time.Duration(ts.Latency.MeanNs), time.Duration(ts.Latency.MaxNs))
		}
		if ts.ActionErrors > 0 {
			fmt.Fprintf(sh.out, ", %d action errors", ts.ActionErrors)
		}
		fmt.Fprintln(sh.out)
	}
	return nil
}

func (sh *shell) why(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		return fmt.Errorf("usage: .why @oid TRIGGER")
	}
	oid, err := parseOID(fields[0])
	if err != nil {
		return err
	}
	ex, err := sh.db.Explain(fields[1], oid)
	if err != nil {
		return err
	}
	status := "has not fired"
	if ex.Fired {
		status = "fired"
	}
	fmt.Fprintf(sh.out, "%s.%s at @%d: %s; state=%d active=%v\n",
		ex.Class, ex.Trigger, ex.OID, status, ex.State, ex.Active)
	if len(ex.Steps) == 0 {
		fmt.Fprintln(sh.out, "  no transitions recorded since activation")
		return nil
	}
	if !ex.Complete {
		fmt.Fprintf(sh.out, "  (chain truncated: ring holds %d of %d transitions)\n",
			len(ex.Steps), ex.TotalSteps)
	}
	for _, s := range ex.Steps {
		fmt.Fprintf(sh.out, "  %4d  %-24s tx=%d %d→%d", s.Seq, s.Kind, s.TxID, s.From, s.To)
		if s.Bits != 0 {
			fmt.Fprintf(sh.out, " bits=%#x", s.Bits)
		}
		if s.Accepted {
			fmt.Fprint(sh.out, "  ** fires")
		}
		fmt.Fprintln(sh.out)
	}
	return nil
}

func (sh *shell) feed(rest string) error {
	fields := strings.Fields(rest)
	var after uint64
	max := 20
	if len(fields) > 2 {
		return fmt.Errorf("usage: .feed [after [max]]")
	}
	if len(fields) >= 1 {
		n, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return fmt.Errorf("bad after position %q", fields[0])
		}
		after = n
	}
	if len(fields) == 2 {
		n, err := strconv.Atoi(fields[1])
		if err != nil || n <= 0 {
			return fmt.Errorf("bad max %q", fields[1])
		}
		max = n
	}
	recs, head := sh.db.Firings(after, max)
	fmt.Fprintf(sh.out, "feed head: %d\n", head)
	for _, r := range recs {
		fmt.Fprintf(sh.out, "  %6d  %s.%s @%d %-10s tx=%d part=%d at=%s\n",
			r.Seq, r.Class, r.Trigger, r.OID, r.Kind, r.TxID, r.Part,
			time.Unix(0, r.AtNs).UTC().Format(time.RFC3339))
	}
	return nil
}

func (sh *shell) automata(rest string) error {
	autos, err := sh.db.Inspect(strings.TrimSpace(rest))
	if err != nil {
		return err
	}
	for _, a := range autos {
		fmt.Fprintf(sh.out, "  %-12s %3d states × %d symbols, table %d B, %d B/object\n",
			a.Trigger, a.States, a.Symbols, a.TableBytes, a.PerObjectBytes)
	}
	return nil
}
