package main

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

// runScript executes shell commands and returns the combined output.
func runScript(t *testing.T, lines ...string) string {
	t.Helper()
	var out bytes.Buffer
	sh, err := newShell(&out)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.close()
	sh.run(bufio.NewScanner(strings.NewReader(strings.Join(lines, "\n"))), false)
	return out.String()
}

func TestShellEndToEnd(t *testing.T) {
	out := runScript(t,
		"define dayEnd=at time(HR=17)",
		"defclass account balance:int=1000 owner:string",
		"defmethod account audit read",
		"deftrigger account Low(): perpetual balance < 500 ==> print",
		"deftrigger account Close(): perpetual dayEnd ==> print",
		"register account",
		"new account owner=alice",
		"activate @1 Low",
		"activate @1 Close",
		"call @1 set_balance 800",
		"call @1 set_balance 400",
		"state @1 Low",
		"advance 12h",
		"get @1 balance",
		"history @1",
		"automata account",
	)
	for _, want := range []string{
		"class account registered",
		"@1",
		"[Low] fired at @1",
		"[Close] fired at @1",
		"active=true",
		"400",
		"timer at time(HR=17)",
		"8 B/object",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "error:") {
		t.Fatalf("script raised errors:\n%s", out)
	}
}

func TestShellExplicitTransaction(t *testing.T) {
	out := runScript(t,
		"defclass acct v:int=0",
		"deftrigger acct Two(): perpetual relative(after set_v, after set_v) ==> print",
		"register acct",
		"new acct",
		"activate @1 Two",
		"begin",
		"call @1 set_v 1",
		"call @1 set_v 2",
		"commit",
		"get @1 v",
	)
	if !strings.Contains(out, "[Two] fired at @1") || !strings.Contains(out, "committed") {
		t.Fatalf("missing firing or commit:\n%s", out)
	}
	// Abort path rolls back.
	out = runScript(t,
		"defclass acct v:int=7",
		"register acct",
		"new acct",
		"begin",
		"call @1 set_v 99",
		"abort",
		"get @1 v",
	)
	if !strings.Contains(out, "aborted") || !strings.Contains(out, "\n7\n") {
		t.Fatalf("abort did not roll back:\n%s", out)
	}
}

func TestShellErrors(t *testing.T) {
	out := runScript(t,
		"bogus command",
		"defclass",                // usage
		"defmethod nosuch m read", // unknown pending class
		"deftrigger nosuch T(): after x ==> print", // unknown pending class
		"register nosuch",
		"new nosuch",
		"call @1 anything",
		"get @99 f",
		"commit",
		"advance notaduration",
		"defclass bad f:wat",
	)
	if n := strings.Count(out, "error:"); n < 10 {
		t.Fatalf("expected ≥10 errors, got %d:\n%s", n, out)
	}
}

func TestShellTabortAction(t *testing.T) {
	out := runScript(t,
		"defclass acct v:int=0",
		"deftrigger acct Guard(): perpetual before set_v && v > 100 ==> tabort",
		"register acct",
		"new acct",
		"activate @1 Guard",
		"call @1 set_v 50",
		"call @1 set_v 500",
		"get @1 v",
	)
	if !strings.Contains(out, "tabort") {
		t.Fatalf("tabort not surfaced:\n%s", out)
	}
	if !strings.Contains(out, "\n50\n") {
		t.Fatalf("rejected write applied:\n%s", out)
	}
}

func TestShellTraceAndStats(t *testing.T) {
	out := runScript(t,
		"defclass acct v:int=0",
		"deftrigger acct Big(): perpetual after set_v(x) && x > 100 ==> print",
		"register acct",
		"new acct",
		"activate @1 Big",
		".trace on",
		"call @1 set_v 500",
		".trace show",
		".stats",
		".trace off",
		".trace show",
	)
	for _, want := range []string{
		"tracing on",
		"happening",           // trace event for the posted method call
		"0→1 accept=true",     // the Big automaton accepting
		"fire",                // the firing event
		"pipeline:",           // .stats counters line
		"acct.Big: 1 firings", // per-trigger metrics line
		"tracing off",
		"error: tracing is off", // show after off fails
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestShellTraceUsage(t *testing.T) {
	out := runScript(t, ".trace sideways", ".trace on", ".trace show notanumber")
	if n := strings.Count(out, "error:"); n != 2 {
		t.Fatalf("expected 2 errors, got %d:\n%s", n, out)
	}
}

// TestShellWhy: the .why command renders a fired trigger's provenance
// chain, and an unfired one's partial state.
func TestShellWhy(t *testing.T) {
	out := runScript(t,
		"defclass account balance:int=1000",
		"defmethod account deposit update a:int",
		"defmethod account withdraw update a:int",
		"deftrigger account Audit(): prior(after deposit, after withdraw) ==> print",
		"deftrigger account Fresh(): perpetual after deposit ==> print",
		"register account",
		"new account",
		"activate @1 Audit",
		"activate @1 Fresh",
		"begin",
		"call @1 deposit 50",
		"call @1 withdraw 20",
		"commit",
		".why @1 Audit",
		"deactivate @1 Fresh",
		"activate @1 Fresh",
		".why @1 Fresh",
	)
	for _, want := range []string{
		"[Audit] fired at @1",
		"account.Audit at @1: fired",
		"after deposit",
		"after withdraw",
		"** fires",
		"account.Fresh at @1: has not fired",
		"no transitions recorded since activation",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "error:") {
		t.Fatalf("script raised errors:\n%s", out)
	}
	// Usage and unknown-trigger errors surface as shell errors.
	out = runScript(t, ".why @1", ".why @1 NoSuch")
	if c := strings.Count(out, "error:"); c != 2 {
		t.Fatalf("want 2 errors, got %d:\n%s", c, out)
	}
}
