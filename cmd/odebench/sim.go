package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"ode/internal/obs"
	"ode/internal/sim"
)

// runSim is the -sim torture mode: many independent seeded simulation
// runs (persistent store, fault injection, all oracles including the
// exactly-once egress ledger), one
// line of progress per chunk, and a final summary. Every failure
// prints its seed and a minimized reproduction script; the exit code
// is nonzero if any iteration failed, so CI can gate on it. With -out
// the summary (plus failing seeds) is written as JSON, and any
// failures additionally dump their flight-recorder captures — the
// pipeline events leading into each divergence — to
// <out>-flight.json; the nightly workflow uploads both as artifacts.
func runSim(iters int, seed int64, volatile bool, out string) int {
	cfg := sim.Defaults(seed)
	cfg.Persistent = !volatile
	cfg.Faults = true
	cfg.Egress = true
	mode := "persistent store + WAL/lock/egress fault injection"
	if volatile {
		mode = "volatile store + lock/egress fault injection"
	}
	fmt.Printf("sim torture: %d iterations from seed %d (%s)\n", iters, seed, mode)

	chunk := iters / 20
	if chunk < 1 {
		chunk = 1
	}
	sum, fails := sim.Torture(sim.TortureOpts{
		Iters:    iters,
		Seed:     seed,
		Cfg:      cfg,
		Minimize: true,
		Progress: func(done, failures int) {
			if done%chunk == 0 || done == iters {
				fmt.Printf("  %6d/%d done, %d failure(s)\n", done, iters, failures)
			}
		},
	})

	table("", []string{"iterations", "failures", "crashes", "recoveries", "torn tails", "faults injected", "firings", "happenings", "effects", "redelivered", "gave up", "delv crashes"},
		[][]string{{
			fmt.Sprintf("%d", sum.Iters),
			fmt.Sprintf("%d", sum.Failures),
			fmt.Sprintf("%d", sum.Crashes),
			fmt.Sprintf("%d", sum.Recoveries),
			fmt.Sprintf("%d", sum.TornTails),
			fmt.Sprintf("%d", sum.Injected),
			fmt.Sprintf("%d", sum.Firings),
			fmt.Sprintf("%d", sum.Happenings),
			fmt.Sprintf("%d", sum.EgressEffects),
			fmt.Sprintf("%d", sum.Redelivered),
			fmt.Sprintf("%d", sum.GaveUp),
			fmt.Sprintf("%d", sum.DelivererCrashes),
		}})
	for _, f := range fails {
		fmt.Fprintf(os.Stderr, "\n%v\n", f)
	}

	if out != "" {
		blob, err := json.MarshalIndent(struct {
			Experiment string             `json:"experiment"`
			Seed       int64              `json:"seed"`
			Volatile   bool               `json:"volatile"`
			Summary    sim.TortureSummary `json:"summary"`
		}{"E14", seed, volatile, sum}, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "odebench: sim: %v\n", err)
			return 1
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(out, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "odebench: sim: %v\n", err)
			return 1
		}
		fmt.Printf("  wrote %s\n", out)
		if len(fails) > 0 {
			if err := writeFlightDump(out, fails); err != nil {
				fmt.Fprintf(os.Stderr, "odebench: sim: %v\n", err)
				return 1
			}
		}
	}
	if sum.Failures > 0 {
		return 1
	}
	return 0
}

// writeFlightDump persists each failure's flight-recorder capture next
// to the summary JSON, so a nightly failure ships its own crash dump.
func writeFlightDump(out string, fails []*sim.Failure) error {
	type dump struct {
		Seed   int64             `json:"seed"`
		Step   int               `json:"step"`
		Error  string            `json:"error"`
		Events []obs.FlightEvent `json:"events"`
	}
	dumps := make([]dump, 0, len(fails))
	for _, f := range fails {
		dumps = append(dumps, dump{Seed: f.Seed, Step: f.Step, Error: f.Err.Error(), Events: f.Flight})
	}
	blob, err := json.MarshalIndent(dumps, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	path := strings.TrimSuffix(out, ".json") + "-flight.json"
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s (%d failure flight dump(s))\n", path, len(dumps))
	return nil
}
