// odebench runs the reproduction's experiment suite (DESIGN.md §5) and
// prints one table per experiment. The paper has no measured tables or
// figures; each experiment quantifies one of its claims:
//
//	E1  automaton vs naive re-evaluation detection cost (§1, §5)
//	E2  one word of detection state per active trigger per object (§5)
//	E3  automaton sizes for the paper's triggers T1–T8 (§4, §5)
//	E4  mask-disjointness rewrite blow-up (§5)
//	E5  committed-view pair construction state growth (§6)
//	E6  the nine E-C-A coupling modes as event expressions (§7)
//	E7  time events on the virtual clock (§3.1, footnote 1)
//	E8  per-trigger automata vs one combined automaton (footnote 5)
//	E9  ablation: per-node minimization during compilation
//	E10 observability: per-trigger metrics JSON for a traced workload
//	E11 parallel posting: ops/sec at 1/2/4/8 goroutines over disjoint
//	    object partitions, volatile and persistent (group-commit WAL);
//	    -out writes the rows as JSON (e.g. BENCH_PR2.json)
//	E12 posting hot path: compiled mask programs + per-kind dispatch +
//	    dense trigger slots vs the AST-interpreter baseline; -out also
//	    reruns E11 and writes both as JSON (e.g. BENCH_PR3.json)
//	E13 compact shared automata: resident transition-table bytes for a
//	    100-trigger fleet sharing 10 expressions vs the unshared fat
//	    baseline, compile-cache hit rate, and stepping cost; -out also
//	    reruns E12 and writes both as JSON (e.g. BENCH_PR4.json)
//	E14 deterministic-simulation torture (the -sim mode, DESIGN.md §11):
//	    seeded randomized runs with fault injection, crash/recovery
//	    cycles and the §4 replay oracle; failing seeds print minimized
//	    reproduction scripts and fail the process; with -out, failures
//	    also dump the flight recorder to <out>-flight.json
//	E15 open-loop latency: the banking mix posted on a fixed arrival
//	    schedule at several target rates, latency measured from each
//	    transaction's intended start (coordinated-omission-safe), with
//	    p50/p90/p99/p99.9; -out also reruns E12 and writes both as JSON
//	    (e.g. BENCH_PR6.json)
//	E16 batch posting: Tx.PostBatch at batch sizes 16/64/256/1024 vs
//	    the single-post E12 volatile baseline — ns and amortized allocs
//	    per happening, happenings/sec, speedup; -out also reruns E12
//	    and writes both as JSON (e.g. BENCH_PR7.json)
//	E17 partitioned scaling: the E11 volatile banking mix at 1/2/4/8
//	    single-writer partitions × producer goroutines × batch sizes,
//	    aggregate happenings/sec and speedup vs the unpartitioned
//	    single-call baseline; -out also reruns E12 and E16 and writes
//	    all three as JSON (e.g. BENCH_PR8.json)
//	E18 timer storm: an IoT fleet arming one canonical `every`
//	    heartbeat per object, swept whole periods at a time — cohort
//	    delivery (timing wheel + columnar stepBatch, one system
//	    transaction per class and tick) vs the per-object baseline
//	    (one clock timer and one transaction per object per tick),
//	    single-engine and partitioned; -out also reruns E12, E16 and
//	    E17 and writes all four as JSON (e.g. BENCH_PR9.json)
//	E19 egress overhead: the E12 single-post and E16 batch hot paths
//	    rerun with the durable firing feed on vs off (Options.
//	    DisableEgress), plus deliverer drain throughput with and
//	    without a durable cursor; -out writes everything as JSON
//	    (e.g. BENCH_PR10.json)
//
// Usage:
//
//	odebench                               # run everything (E1..E13, E15..E19)
//	odebench -exp E4                       # one experiment
//	odebench -exp E11 -out BENCH_PR2.json  # parallel numbers as JSON
//	odebench -exp E12 -out BENCH_PR3.json  # hot-path + parallel JSON
//	odebench -exp E13 -out BENCH_PR4.json  # compact-automata JSON
//	odebench -exp E15 -out BENCH_PR6.json  # open-loop latency JSON
//	odebench -exp E16 -out BENCH_PR7.json  # batch-posting JSON
//	odebench -exp E17 -out BENCH_PR8.json  # partitioned-scaling JSON
//	odebench -exp E18 -out BENCH_PR9.json  # timer-storm JSON
//	odebench -exp E19 -out BENCH_PR10.json # egress-overhead JSON
//	odebench -sim -iters 10000 -seed 1     # E14 torture campaign
//	odebench -sim -iters 1000 -out sim.json
//
// Profiling: -cpuprofile and -memprofile write pprof profiles covering
// whichever experiments run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"text/tabwriter"

	"ode/internal/workload"
)

func main() { os.Exit(run()) }

// run carries the real main body; returning instead of os.Exit lets the
// profiling defers flush before the process dies.
func run() int {
	exp := flag.String("exp", "", "experiment id (E1..E13, E15..E19; E14 is -sim); empty = all")
	seed := flag.Int64("seed", 42, "workload seed")
	out := flag.String("out", "", "write E11/E12/E13/-sim results as JSON to this file")
	simMode := flag.Bool("sim", false, "run the deterministic-simulation torture campaign (E14) instead of the experiment tables")
	iters := flag.Int("iters", 1000, "-sim: number of seeded iterations (iteration i runs seed+i)")
	simVolatile := flag.Bool("sim-volatile", false, "-sim: use a volatile store (lock faults only, no WAL/crash cycles)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "odebench: cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "odebench: cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "odebench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "odebench: memprofile: %v\n", err)
			}
		}()
	}

	if *simMode {
		return runSim(*iters, *seed, *simVolatile, *out)
	}

	all := []struct {
		id  string
		run func() error
	}{
		{"E1", func() error { return e1(*seed) }},
		{"E2", e2},
		{"E3", e3},
		{"E4", e4},
		{"E5", e5},
		{"E6", e6},
		{"E7", e7},
		{"E8", func() error { return e8(*seed) }},
		{"E9", e9},
		{"E10", func() error { return e10(*seed) }},
		{"E11", func() error { return e11(*seed, *out) }},
		{"E12", func() error { return e12(*seed, *out) }},
		{"E13", func() error { return e13(*seed, *out) }},
		{"E15", func() error { return e15(*seed, *out) }},
		{"E16", func() error { return e16(*out) }},
		{"E17", func() error { return e17(*seed, *out) }},
		{"E18", func() error { return e18(*seed, *out) }},
		{"E19", func() error { return e19(*out) }},
	}
	ran := false
	for _, e := range all {
		if *exp != "" && !strings.EqualFold(*exp, e.id) {
			continue
		}
		ran = true
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "odebench: %s: %v\n", e.id, err)
			return 1
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "odebench: unknown experiment %q\n", *exp)
		return 2
	}
	return 0
}

func table(title string, header []string, rows [][]string) {
	fmt.Println(title)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  "+strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, "  "+strings.Join(r, "\t"))
	}
	w.Flush()
}

func e1(seed int64) error {
	rows := workload.RunE1([]int{100, 1000, 10000}, seed)
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Expr,
			fmt.Sprintf("%d", r.HistoryLen),
			fmt.Sprintf("%.0f", r.AutomatonNsPerEvent),
			fmt.Sprintf("%.0f", r.NaiveNsPerEvent),
			fmt.Sprintf("%.0fx", r.Speedup),
		})
	}
	table("E1 — detection cost per posted event: compiled automaton vs naive §4 re-evaluation",
		[]string{"trigger", "history", "automaton ns/ev", "naive ns/ev", "speedup"}, out)
	return nil
}

func e2() error {
	rows := workload.RunE2([]int{10, 100, 1000, 10000}, 8)
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.HistoryLen),
			fmt.Sprintf("%d", r.AutomatonBytesPerObject),
			fmt.Sprintf("%d", r.HistoryBytesPerObject),
		})
	}
	table("E2 — per-object detection state, 8 active triggers (§5: one word per trigger per object)",
		[]string{"history len", "automaton B/obj", "retained-history B/obj"}, out)

	er, err := workload.RunE2Engine(64)
	if err != nil {
		return err
	}
	fmt.Printf("  live engine check: %d objects × %d triggers → %d state words per object\n",
		er.Objects, er.TriggersPerObject, er.StateWordsPerObject)
	return nil
}

func e3() error {
	rows := workload.RunE3()
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Expr,
			fmt.Sprintf("%d", r.ExprNodes),
			fmt.Sprintf("%d", r.DFAStates),
			fmt.Sprintf("%d", r.Symbols),
			fmt.Sprintf("%d", r.TableBytes),
		})
	}
	table("E3 — minimized automaton sizes for the paper's trigger events (§4 ≡ regular languages)",
		[]string{"trigger", "expr nodes", "DFA states", "symbols", "table bytes"}, out)
	return nil
}

func e4() error {
	rows, err := workload.RunE4(10)
	if err != nil {
		return err
	}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.Masks),
			fmt.Sprintf("%d", r.Symbols),
			fmt.Sprintf("%d", r.DFAStates),
			fmt.Sprintf("%.2f", r.ResolveMs),
		})
	}
	table("E4 — §5 mask-disjointness rewrite: k overlapping masks on one basic event (block = 2^k)",
		[]string{"masks k", "alphabet symbols", "union DFA states", "resolve+compile ms"}, out)
	return nil
}

func e5() error {
	rows := workload.RunE5()
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Expr,
			fmt.Sprintf("%d", r.AStates),
			fmt.Sprintf("%d", r.APrimStates),
			fmt.Sprintf("%d", r.Bound),
		})
	}
	table("E5 — §6 Claim: committed-view automaton A → whole-history A' (pairs; bound |A|²)",
		[]string{"trigger", "|A|", "|A'|", "|A|²"}, out)
	return nil
}

func e6() error {
	rows, err := workload.RunE6()
	if err != nil {
		return err
	}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Mode,
			fmt.Sprintf("%d", r.DFAStates),
			fmt.Sprintf("%d", r.Symbols),
		})
	}
	table("E6 — §7: every E-C-A coupling mode as a plain event expression (E-A model)",
		[]string{"coupling", "DFA states", "symbols"}, out)
	return nil
}

func e7() error {
	rows, err := workload.RunE7()
	if err != nil {
		return err
	}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Spec, r.Horizon, fmt.Sprintf("%d", r.Fires), fmt.Sprintf("%d", r.Expected)})
	}
	table("E7 — time events on the virtual clock (§3.1; footnote 1)",
		[]string{"specification", "horizon", "fires", "expected"}, out)
	return nil
}

func e9() error {
	rows := workload.RunE9()
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Expr,
			fmt.Sprintf("%.0f", r.WithMinUs),
			fmt.Sprintf("%.0f", r.WithoutMinUs),
			fmt.Sprintf("%d", r.FinalStates),
		})
	}
	table("E9 — ablation: minimize at every operator node vs only at the end",
		[]string{"trigger", "with-min µs", "without µs", "final states"}, out)
	return nil
}

func e10(seed int64) error {
	r, err := workload.RunE10(500, 16, seed)
	if err != nil {
		return err
	}
	fmt.Println("E10 — observability: per-trigger metrics for a traced 500-tx banking workload")
	fmt.Printf("  stats: %d tx committed, %d happenings, %d steps, %d firings; trace: %d retained of %d\n",
		r.Stats.TxCommitted, r.Stats.Happenings, r.Stats.Steps, r.Stats.Firings,
		r.TraceRetained, r.TraceTotal)
	blob, err := json.MarshalIndent(r.Metrics, "  ", "  ")
	if err != nil {
		return err
	}
	fmt.Println("  " + string(blob))
	return nil
}

func e11(seed int64, out string) error {
	gs := []int{1, 2, 4, 8}
	volatile, err := workload.RunE11(250, 32, seed, false, gs)
	if err != nil {
		return err
	}
	persistent, err := workload.RunE11(100, 32, seed, true, gs)
	if err != nil {
		return err
	}
	gomaxprocs, numCPU := workload.E11CPUs()
	fmt.Printf("E11 — parallel posting over disjoint object partitions (GOMAXPROCS=%d, NumCPU=%d)\n",
		gomaxprocs, numCPU)
	rows := make([][]string, 0, len(volatile)+len(persistent))
	for _, rs := range [][]workload.E11Row{volatile, persistent} {
		for _, r := range rs {
			mode := "volatile"
			if r.Persistent {
				mode = "persistent"
			}
			rows = append(rows, []string{
				mode,
				fmt.Sprintf("%d", r.Goroutines),
				fmt.Sprintf("%d", r.Calls),
				fmt.Sprintf("%.0f", r.OpsPerSec),
				fmt.Sprintf("%.2fx", r.Speedup),
			})
		}
	}
	table("", []string{"store", "goroutines", "calls", "ops/sec", "speedup vs 1"}, rows)

	if out == "" {
		return nil
	}
	blob, err := json.MarshalIndent(struct {
		Experiment string            `json:"experiment"`
		GOMAXPROCS int               `json:"gomaxprocs"`
		NumCPU     int               `json:"num_cpu"`
		Volatile   []workload.E11Row `json:"volatile"`
		Persistent []workload.E11Row `json:"persistent"`
	}{"E11", gomaxprocs, numCPU, volatile, persistent}, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", out)
	return nil
}

func e12(seed int64, out string) error {
	rows, err := workload.RunE12(20000)
	if err != nil {
		return err
	}
	tbl := make([][]string, 0, len(rows))
	for _, r := range rows {
		tbl = append(tbl, []string{
			r.Scenario,
			r.Mode,
			fmt.Sprintf("%.0f", r.NsPerOp),
			fmt.Sprintf("%.2f", r.AllocsPerOp),
			fmt.Sprintf("%d", r.Firings),
		})
	}
	table("E12 — posting hot path: compiled mask programs + dispatch tables + dense slots vs AST interpreter",
		[]string{"scenario", "masks", "ns/op", "allocs/op", "firings"}, tbl)

	if out == "" {
		return nil
	}
	gs := []int{1, 2, 4, 8}
	volatile, err := workload.RunE11(250, 32, seed, false, gs)
	if err != nil {
		return err
	}
	persistent, err := workload.RunE11(100, 32, seed, true, gs)
	if err != nil {
		return err
	}
	gomaxprocs, numCPU := workload.E11CPUs()
	blob, err := json.MarshalIndent(struct {
		Experiment string            `json:"experiment"`
		GOMAXPROCS int               `json:"gomaxprocs"`
		NumCPU     int               `json:"num_cpu"`
		HotPath    []workload.E12Row `json:"hot_path"`
		Volatile   []workload.E11Row `json:"e11_volatile"`
		Persistent []workload.E11Row `json:"e11_persistent"`
	}{"E12", gomaxprocs, numCPU, rows, volatile, persistent}, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", out)
	return nil
}

func e13(seed int64, out string) error {
	r, err := workload.RunE13(10, seed)
	if err != nil {
		return err
	}
	fmt.Println("E13 — compact shared automata: hash-consed, row-deduplicated narrow tables")
	table("", []string{"triggers", "distinct exprs", "tables", "fat B", "compact B", "reduction", "hit rate"},
		[][]string{{
			fmt.Sprintf("%d", r.Triggers),
			fmt.Sprintf("%d", r.DistinctExprs),
			fmt.Sprintf("%d", r.Tables),
			fmt.Sprintf("%d", r.FatBytes),
			fmt.Sprintf("%d", r.CompactBytes),
			fmt.Sprintf("%.1fx", r.Reduction),
			fmt.Sprintf("%.2f", r.HitRate),
		}})
	fmt.Printf("  raw stepping: compact %.1f ns/step, fat oracle %.1f ns/step\n",
		r.CompactNsPerStep, r.OracleNsPerStep)

	if out == "" {
		return nil
	}
	// The hot-path guarantee rides along: rerun E12 so BENCH_PR4.json
	// shows posting ns/op did not regress against the PR 3 baseline.
	hot, err := workload.RunE12(20000)
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(struct {
		Experiment string             `json:"experiment"`
		Compact    workload.E13Result `json:"compact"`
		HotPath    []workload.E12Row  `json:"hot_path"`
	}{"E13", r, hot}, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", out)
	return nil
}

func e15(seed int64, out string) error {
	rates := []float64{2000, 10000, 50000}
	rows, err := workload.RunE15(2000, 32, 16, seed, rates)
	if err != nil {
		return err
	}
	tbl := make([][]string, 0, len(rows))
	for _, r := range rows {
		tbl = append(tbl, []string{
			fmt.Sprintf("%.0f", r.TargetRate),
			fmt.Sprintf("%.0f", r.AchievedRate),
			us(r.P50Ns),
			us(r.P90Ns),
			us(r.P99Ns),
			us(r.P999Ns),
			us(r.MaxNs),
			fmt.Sprintf("%d", r.Late),
		})
	}
	table("E15 — open-loop latency from intended start (coordinated-omission-safe)",
		[]string{"target/s", "achieved/s", "p50", "p90", "p99", "p99.9", "max", "late"}, tbl)

	if out == "" {
		return nil
	}
	// The zero-alloc posting guarantee rides along, as in E13: rerun
	// E12 so the JSON shows the hot path did not regress under the
	// always-on flight recorder and provenance rings.
	hot, err := workload.RunE12(20000)
	if err != nil {
		return err
	}
	gomaxprocs, numCPU := workload.E11CPUs()
	blob, err := json.MarshalIndent(struct {
		Experiment string            `json:"experiment"`
		GOMAXPROCS int               `json:"gomaxprocs"`
		NumCPU     int               `json:"num_cpu"`
		OpenLoop   []workload.E15Row `json:"open_loop"`
		HotPath    []workload.E12Row `json:"hot_path"`
	}{"E15", gomaxprocs, numCPU, rows, hot}, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", out)
	return nil
}

func e16(out string) error {
	rows, err := workload.RunE16(131072, []int{16, 64, 256, 1024})
	if err != nil {
		return err
	}
	tbl := make([][]string, 0, len(rows))
	for _, r := range rows {
		tbl = append(tbl, []string{
			r.Scenario,
			r.Mode,
			fmt.Sprintf("%d", r.BatchSize),
			fmt.Sprintf("%.0f", r.NsPerH),
			fmt.Sprintf("%.2f", r.AllocsPerH),
			fmt.Sprintf("%.0f", r.PerSec),
			fmt.Sprintf("%.2fx", r.SpeedupSingle),
		})
	}
	table("E16 — batch posting: Tx.PostBatch batch-size sweep vs the single-post volatile baseline",
		[]string{"scenario", "mode", "batch", "ns/happening", "allocs/happening", "happenings/sec", "speedup"}, tbl)

	if out == "" {
		return nil
	}
	// The single-post guarantee rides along, as in E13/E15: rerun E12
	// so the JSON shows the Tx.Call hot path did not regress while the
	// batch path was added.
	hot, err := workload.RunE12(20000)
	if err != nil {
		return err
	}
	gomaxprocs, numCPU := workload.E11CPUs()
	blob, err := json.MarshalIndent(struct {
		Experiment string            `json:"experiment"`
		GOMAXPROCS int               `json:"gomaxprocs"`
		NumCPU     int               `json:"num_cpu"`
		Batch      []workload.E16Row `json:"batch"`
		HotPath    []workload.E12Row `json:"hot_path"`
	}{"E16", gomaxprocs, numCPU, rows, hot}, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", out)
	return nil
}

func e17(seed int64, out string) error {
	rows, err := workload.RunE17(40000, 32, seed,
		[]int{1, 2, 4, 8}, []int{1, 4}, []int{1, 64})
	if err != nil {
		return err
	}
	gomaxprocs, numCPU := workload.E11CPUs()
	fmt.Printf("E17 — partitioned scaling: single-writer loops × producers × batch (GOMAXPROCS=%d, NumCPU=%d)\n",
		gomaxprocs, numCPU)
	tbl := make([][]string, 0, len(rows))
	for _, r := range rows {
		tbl = append(tbl, []string{
			fmt.Sprintf("%d", r.Partitions),
			fmt.Sprintf("%d", r.Goroutines),
			fmt.Sprintf("%d", r.Batch),
			fmt.Sprintf("%d", r.Calls),
			fmt.Sprintf("%.0f", r.OpsPerSec),
			fmt.Sprintf("%.2fx", r.SpeedupVsP1),
		})
	}
	table("", []string{"partitions", "goroutines", "batch", "calls", "happenings/sec", "vs P=1 single"}, tbl)

	if out == "" {
		return nil
	}
	// The no-regression guarantees ride along: rerun E12 (single-post
	// hot path) and E16 (single-engine batch posting) so the JSON shows
	// neither path regressed while the partitioned layer was added.
	hot, err := workload.RunE12(20000)
	if err != nil {
		return err
	}
	batch, err := workload.RunE16(131072, []int{64, 256})
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(struct {
		Experiment string            `json:"experiment"`
		GOMAXPROCS int               `json:"gomaxprocs"`
		NumCPU     int               `json:"num_cpu"`
		Scaling    []workload.E17Row `json:"scaling"`
		HotPath    []workload.E12Row `json:"hot_path"`
		Batch      []workload.E16Row `json:"batch"`
	}{"E17", gomaxprocs, numCPU, rows, hot, batch}, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", out)
	return nil
}

func e18(seed int64, out string) error {
	rows, err := workload.RunE18([]int{10000, 100000}, 10, []int{2, 8})
	if err != nil {
		return err
	}
	gomaxprocs, numCPU := workload.E11CPUs()
	fmt.Printf("E18 — timer storm: cohort wheel delivery vs one transaction per object per tick (GOMAXPROCS=%d, NumCPU=%d)\n",
		gomaxprocs, numCPU)
	tbl := make([][]string, 0, len(rows))
	for _, r := range rows {
		tbl = append(tbl, []string{
			r.Layout,
			fmt.Sprintf("%d", r.Partitions),
			fmt.Sprintf("%d", r.Objects),
			fmt.Sprintf("%d", r.Posts),
			fmt.Sprintf("%d", r.Firings),
			fmt.Sprintf("%.0f", r.PostsPerSec),
			fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	table("", []string{"layout", "partitions", "objects", "timer posts", "firings", "posts/sec", "vs per-object"}, tbl)

	if out == "" {
		return nil
	}
	// The no-regression guarantees ride along: rerun E12 (single-post
	// hot path), E16 (batch posting) and E17 (partitioned scaling) so
	// the JSON shows none of them regressed while the timing wheel and
	// cohort delivery replaced the timer core.
	hot, err := workload.RunE12(20000)
	if err != nil {
		return err
	}
	batch, err := workload.RunE16(131072, []int{64, 256})
	if err != nil {
		return err
	}
	scaling, err := workload.RunE17(40000, 32, seed,
		[]int{1, 2, 4, 8}, []int{4}, []int{1, 64})
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(struct {
		Experiment string            `json:"experiment"`
		GOMAXPROCS int               `json:"gomaxprocs"`
		NumCPU     int               `json:"num_cpu"`
		Timer      []workload.E18Row `json:"timer_storm"`
		HotPath    []workload.E12Row `json:"hot_path"`
		Batch      []workload.E16Row `json:"batch"`
		Scaling    []workload.E17Row `json:"scaling"`
	}{"E18", gomaxprocs, numCPU, rows, hot, batch, scaling}, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", out)
	return nil
}

// us renders a nanosecond latency as microseconds for the tables.
func us(ns uint64) string {
	return fmt.Sprintf("%.0fµs", float64(ns)/1e3)
}

func e8(seed int64) error {
	r := workload.RunE8(200000, seed)
	table("E8 — footnote 5 ablation: separate trigger automata vs one combined automaton",
		[]string{"triggers", "combined states", "separate ns/ev", "combined ns/ev", "speedup"},
		[][]string{{
			fmt.Sprintf("%d", r.Triggers),
			fmt.Sprintf("%d", r.CombinedStates),
			fmt.Sprintf("%.1f", r.SeparateNsPerEvent),
			fmt.Sprintf("%.1f", r.CombinedNsPerEvent),
			fmt.Sprintf("%.1fx", r.SeparateNsPerEvent/r.CombinedNsPerEvent),
		}})
	return nil
}

func e19(out string) error {
	res, err := workload.RunE19(20000, 131072, []int{64, 256}, 50000)
	if err != nil {
		return err
	}
	gomaxprocs, numCPU := workload.E11CPUs()
	fmt.Printf("E19 — egress overhead: hot paths with the durable firing feed on vs off, plus delivery throughput (GOMAXPROCS=%d, NumCPU=%d)\n",
		gomaxprocs, numCPU)

	tbl := make([][]string, 0, len(res.Hot))
	for _, r := range res.Hot {
		over := ""
		if r.Egress == "on" {
			over = fmt.Sprintf("%+.1f%%", r.OverheadPct)
		}
		tbl = append(tbl, []string{
			r.Scenario, r.Egress,
			fmt.Sprintf("%.1f", r.NsPerOp),
			fmt.Sprintf("%.3f", r.AllocsPerOp),
			fmt.Sprintf("%d", r.Firings),
			over,
		})
	}
	table("single-post hot path (E12 rerun)",
		[]string{"scenario", "egress", "ns/op", "allocs/op", "firings", "overhead"}, tbl)

	tbl = tbl[:0]
	for _, r := range res.Batch {
		over := ""
		if r.Egress == "on" {
			over = fmt.Sprintf("%+.1f%%", r.OverheadPct)
		}
		tbl = append(tbl, []string{
			r.Scenario,
			fmt.Sprintf("%d", r.BatchSize),
			r.Egress,
			fmt.Sprintf("%.1f", r.NsPerH),
			fmt.Sprintf("%.3f", r.AllocsPerH),
			over,
		})
	}
	table("batch posting (E16 rerun)",
		[]string{"scenario", "batch", "egress", "ns/happening", "allocs/happening", "overhead"}, tbl)

	tbl = tbl[:0]
	for _, r := range res.Delivery {
		tbl = append(tbl, []string{
			r.Mode,
			fmt.Sprintf("%d", r.Records),
			fmt.Sprintf("%.1f", r.NsPerRecord),
			fmt.Sprintf("%.0f", r.RecordsPerSec),
			fmt.Sprintf("%d", r.CursorSaves),
		})
	}
	table("deliverer drain", []string{"mode", "records", "ns/record", "records/sec", "cursor saves"}, tbl)

	if out == "" {
		return nil
	}
	blob, err := json.MarshalIndent(struct {
		Experiment string             `json:"experiment"`
		GOMAXPROCS int                `json:"gomaxprocs"`
		NumCPU     int                `json:"num_cpu"`
		Egress     workload.E19Result `json:"egress"`
	}{"E19", gomaxprocs, numCPU, res}, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", out)
	return nil
}
