// eventc compiles an Ode composite-event expression into its finite
// automaton (the paper's §5 pipeline) and prints the result: automaton
// size, the transition table, or Graphviz DOT.
//
// Usage:
//
//	eventc [flags] EVENT
//
//	eventc 'after deposit; before withdraw; after withdraw'
//	eventc -dot 'fa(after tbegin, prior(after update, after tcommit), after tcommit | after tabort)'
//	eventc -methods 'motorStart:update motorStop:update' \
//	       -fields 'pressure:float low_limit:float' \
//	       -define 'pDrop=pressure < low_limit' \
//	       -define 'valveOpen=relative(after motorStart, after motorStop)' \
//	       'relative(pDrop, valveOpen)'
//
// Without -methods, a default schema resembling the paper's stockRoom
// (deposit, withdraw, log, summary, ...) is used.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ode"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ";") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	var (
		methods = flag.String("methods", "", "space-separated name:mode[:param,param] method declarations (mode: read|update)")
		fields  = flag.String("fields", "", "space-separated name:kind field declarations (kind: int|float|bool|string|id)")
		dot     = flag.Bool("dot", false, "emit Graphviz DOT")
		table   = flag.Bool("table", false, "emit the transition table")
		defines multiFlag
	)
	flag.Var(&defines, "define", "name=event abbreviation (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: eventc [flags] EVENT")
		flag.PrintDefaults()
		os.Exit(2)
	}

	cls, err := buildClass(*methods, *fields)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eventc:", err)
		os.Exit(1)
	}
	var defs *ode.Defines
	if len(defines) > 0 {
		defs = ode.NewDefines()
		for _, d := range defines {
			name, src, ok := strings.Cut(d, "=")
			if !ok {
				fmt.Fprintf(os.Stderr, "eventc: bad -define %q (want name=event)\n", d)
				os.Exit(2)
			}
			defs.Add(strings.TrimSpace(name), src)
		}
	}

	auto, err := ode.CompileEvent(cls, flag.Arg(0), defs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eventc:", err)
		os.Exit(1)
	}

	switch {
	case *dot:
		fmt.Print(auto.Dot())
	case *table:
		fmt.Print(auto.Table())
	default:
		fmt.Printf("event:            %s\n", flag.Arg(0))
		fmt.Printf("alphabet symbols: %d\n", auto.Symbols)
		fmt.Printf("DFA states:       %d (minimized)\n", auto.States)
		fmt.Printf("shared table:     %d bytes\n", auto.TableBytes)
		fmt.Printf("per-object state: %d bytes (one word per active trigger, paper §5)\n", auto.PerObjectBytes)
	}
}

func buildClass(methodSpec, fieldSpec string) (*ode.Class, error) {
	cls := &ode.Class{Name: "eventc"}
	if methodSpec == "" {
		methodSpec = "deposit:update:i,q withdraw:update:i,q log:update order:update " +
			"summary:read report:read printLog:read updateAverages:update authorized:read:u"
	}
	for _, m := range strings.Fields(methodSpec) {
		parts := strings.SplitN(m, ":", 3)
		if len(parts) < 2 {
			return nil, fmt.Errorf("bad method %q (want name:mode[:params])", m)
		}
		mode := ode.ModeRead
		switch parts[1] {
		case "read":
		case "update":
			mode = ode.ModeUpdate
		default:
			return nil, fmt.Errorf("bad mode %q", parts[1])
		}
		method := ode.Method{Name: parts[0], Mode: mode}
		if len(parts) == 3 && parts[2] != "" {
			for _, p := range strings.Split(parts[2], ",") {
				method.Params = append(method.Params, ode.P(p, ode.KindInt))
			}
		}
		cls.Methods = append(cls.Methods, method)
	}
	for _, f := range strings.Fields(fieldSpec) {
		name, kindName, ok := strings.Cut(f, ":")
		if !ok {
			return nil, fmt.Errorf("bad field %q (want name:kind)", f)
		}
		var kind ode.Kind
		switch kindName {
		case "int":
			kind = ode.KindInt
		case "float":
			kind = ode.KindFloat
		case "bool":
			kind = ode.KindBool
		case "string":
			kind = ode.KindString
		case "id":
			kind = ode.KindID
		default:
			return nil, fmt.Errorf("bad kind %q", kindName)
		}
		cls.Fields = append(cls.Fields, ode.Field{Name: name, Kind: kind})
	}
	return cls, nil
}
