package main

import (
	"strings"
	"testing"

	"ode"
)

func TestBuildClassDefaults(t *testing.T) {
	cls, err := buildClass("", "")
	if err != nil {
		t.Fatal(err)
	}
	if cls.Method("withdraw") == nil || cls.Method("summary") == nil {
		t.Fatalf("default schema incomplete: %+v", cls.Methods)
	}
	if cls.Method("withdraw").Mode != ode.ModeUpdate || cls.Method("summary").Mode != ode.ModeRead {
		t.Fatal("default schema modes")
	}
	if got := len(cls.Method("withdraw").Params); got != 2 {
		t.Fatalf("withdraw params = %d", got)
	}
}

func TestBuildClassCustom(t *testing.T) {
	cls, err := buildClass("motorStart:update motorStop:update probe:read:x,y",
		"pressure:float low_limit:float name:string ref:id on:bool n:int")
	if err != nil {
		t.Fatal(err)
	}
	if len(cls.Methods) != 3 || len(cls.Fields) != 6 {
		t.Fatalf("methods %d fields %d", len(cls.Methods), len(cls.Fields))
	}
	if cls.Field("pressure").Kind != ode.KindFloat || cls.Field("ref").Kind != ode.KindID {
		t.Fatal("field kinds")
	}
	if got := cls.Method("probe").Params; len(got) != 2 || got[1].Name != "y" {
		t.Fatalf("probe params %+v", got)
	}
}

func TestBuildClassErrors(t *testing.T) {
	for _, tc := range [][2]string{
		{"nomode", ""},
		{"m:banana", ""},
		{"", "noinfield"},
		{"", "f:wat"},
	} {
		if _, err := buildClass(tc[0], tc[1]); err == nil {
			t.Errorf("buildClass(%q, %q) succeeded", tc[0], tc[1])
		}
	}
}

func TestCompileThroughPublicAPI(t *testing.T) {
	cls, _ := buildClass("", "")
	auto, err := ode.CompileEvent(cls, "after deposit; before withdraw; after withdraw", nil)
	if err != nil {
		t.Fatal(err)
	}
	if auto.States != 4 {
		t.Fatalf("T8 automaton states = %d", auto.States)
	}
	if !strings.Contains(auto.Dot(), "doublecircle") {
		t.Fatal("dot output lacks an accepting state")
	}
	defs := ode.NewDefines().Add("dayEnd", "at time(HR=17)")
	auto2, err := ode.CompileEvent(cls, "relative(dayEnd, after tcommit)", defs)
	if err != nil || auto2.States < 2 {
		t.Fatalf("defines path: %v, %v", auto2, err)
	}
}
