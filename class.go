package ode

import (
	"fmt"

	"ode/internal/engine"
	"ode/internal/evlang"
	"ode/internal/schema"
)

// ClassBuilder assembles a class: fields, member functions, mask
// functions and triggers, mirroring an O++ class declaration (§2):
//
//	class stockRoom {
//	    ...
//	public:
//	    void withdraw(Item i, int q);
//	trigger:
//	    T6(): perpetual after withdraw(i, q) && q > 100 ==> log()
//	};
type ClassBuilder struct {
	db         *Database
	cls        *schema.Class
	impl       engine.ClassImpl
	defines    *Defines
	rawActions []rawAction
	err        error
}

// NewClass starts building a class.
func (db *Database) NewClass(name string) *ClassBuilder {
	return &ClassBuilder{
		db:  db,
		cls: &schema.Class{Name: name},
		impl: engine.ClassImpl{
			Methods: map[string]MethodImpl{},
			Actions: map[string]ActionFunc{},
			Funcs:   map[string]MaskFunc{},
			Views:   map[string]HistoryView{},
		},
	}
}

// Field declares a typed field with an optional default (pass
// ode.Null() for none).
func (b *ClassBuilder) Field(name string, kind Kind, deflt Value) *ClassBuilder {
	b.cls.Fields = append(b.cls.Fields, schema.Field{Name: name, Kind: kind, Default: deflt})
	return b
}

// Method declares a member function with an explicit access mode.
// The final variadic segment is the parameter list.
func (b *ClassBuilder) Method(name string, mode schema.AccessMode, impl MethodImpl, params ...Param) *ClassBuilder {
	b.cls.Methods = append(b.cls.Methods, schema.Method{Name: name, Params: params, Mode: mode})
	b.impl.Methods[name] = impl
	return b
}

// Update declares an updating member function (drives before/after
// update and access events).
func (b *ClassBuilder) Update(name string, impl MethodImpl, params ...Param) *ClassBuilder {
	return b.Method(name, schema.ModeUpdate, impl, params...)
}

// Read declares a read-only member function (drives before/after read
// and access events; callable from masks).
func (b *ClassBuilder) Read(name string, impl MethodImpl, params ...Param) *ClassBuilder {
	return b.Method(name, schema.ModeRead, impl, params...)
}

// Func installs a class-level mask function.
func (b *ClassBuilder) Func(name string, fn MaskFunc) *ClassBuilder {
	b.impl.Funcs[name] = fn
	return b
}

// Defines attaches #define-style abbreviations usable in this class's
// trigger events.
func (b *ClassBuilder) Defines(d *Defines) *ClassBuilder {
	b.defines = d
	return b
}

// Trigger declares a trigger in the paper's full syntax:
//
//	name(params): [perpetual] event ==> action
//
// The action text may be "tabort", a niladic member call "f()", or any
// label bound by the supplied ActionFunc (which, when non-nil, takes
// precedence). Trigger parameters are declared in the heading and are
// available to masks.
func (b *ClassBuilder) Trigger(decl string, action ActionFunc) *ClassBuilder {
	if b.err != nil {
		return b
	}
	ps := b.parser()
	d, err := ps.ParseTrigger(decl)
	if err != nil {
		b.err = err
		return b
	}
	params := make([]Param, len(d.Params))
	for i, p := range d.Params {
		// Trigger parameter kinds are dynamic; masks type-check at
		// evaluation time.
		params[i] = Param{Name: p, Kind: KindNull}
	}
	b.cls.Triggers = append(b.cls.Triggers, schema.Trigger{
		Name:      d.Name,
		Params:    params,
		Perpetual: d.Perpetual,
		Event:     d.Event.String(),
	})
	if action != nil {
		b.impl.Actions[d.Name] = action
	} else if d.Action != "" {
		// Builtin action forms ("tabort", "f()") resolve once the full
		// method list is known, at Register.
		b.rawActions = append(b.rawActions, rawAction{d.Name, d.Action})
	}
	return b
}

type rawAction struct{ trigger, action string }

// View overrides a trigger's §6 history view (default CommittedView).
func (b *ClassBuilder) View(trigger string, v HistoryView) *ClassBuilder {
	b.impl.Views[trigger] = v
	return b
}

func (b *ClassBuilder) parser() *evlang.Parser {
	if b.defines != nil {
		return b.defines.ps
	}
	b.defines = NewDefines()
	return b.defines.ps
}

// Register validates, resolves and compiles the class into the
// database.
func (b *ClassBuilder) Register() error {
	if b.err != nil {
		return b.err
	}
	for _, ra := range b.rawActions {
		if _, bound := b.impl.Actions[ra.trigger]; bound {
			continue
		}
		action, err := builtinAction(b.cls, ra.action)
		if err != nil {
			return fmt.Errorf("ode: trigger %s: %w", ra.trigger, err)
		}
		b.impl.Actions[ra.trigger] = action
	}
	if parts := b.db.parts; parts != nil {
		// Partitioned mode: an object of any class may live in any
		// partition, so the class registers with every partition's
		// engine. Each registration clones the shared parser; the schema
		// and implementation maps are read-only after this point.
		return parts.Register(func(_ int, e *engine.Engine) error {
			_, err := e.RegisterClass(b.cls, b.impl, b.parser())
			return err
		})
	}
	_, err := b.db.eng.RegisterClass(b.cls, b.impl, b.parser())
	return err
}

// builtinAction interprets the paper's inline action forms.
func builtinAction(cls *schema.Class, raw string) (ActionFunc, error) {
	if raw == "tabort" {
		return func(ctx *ActionCtx) error { return ctx.Tabort() }, nil
	}
	if n := len(raw); n > 2 && raw[n-2] == '(' && raw[n-1] == ')' {
		method := raw[:n-2]
		if cls.Method(method) != nil {
			return func(ctx *ActionCtx) error {
				_, err := ctx.Tx.Call(ctx.Self, method)
				return err
			}, nil
		}
		return nil, fmt.Errorf("ode: action %q calls unknown method", raw)
	}
	return nil, fmt.Errorf("ode: action %q is not bound and is not a builtin form", raw)
}
