package ode_test

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"ode"
)

// fires is a concurrency-safe firing recorder.
type fires struct {
	mu sync.Mutex
	n  map[string]int
}

func newFires() *fires { return &fires{n: map[string]int{}} }

func (f *fires) action(name string) ode.ActionFunc {
	return func(*ode.ActionCtx) error {
		f.mu.Lock()
		f.n[name]++
		f.mu.Unlock()
		return nil
	}
}

func (f *fires) count(name string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n[name]
}

func openDB(t *testing.T) *ode.Database {
	t.Helper()
	db, err := ode.Open(ode.Options{Start: time.Date(2026, 7, 4, 8, 0, 0, 0, time.UTC)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func balanceMethods(b *ode.ClassBuilder) *ode.ClassBuilder {
	return b.
		Field("balance", ode.KindInt, ode.Int(0)).
		Update("deposit", func(ctx *ode.MethodCtx) (ode.Value, error) {
			v, _ := ctx.Get("balance")
			return ode.Null(), ctx.Set("balance", ode.Int(v.AsInt()+ctx.Arg("n").AsInt()))
		}, ode.P("n", ode.KindInt)).
		Update("withdraw", func(ctx *ode.MethodCtx) (ode.Value, error) {
			v, _ := ctx.Get("balance")
			return ode.Null(), ctx.Set("balance", ode.Int(v.AsInt()-ctx.Arg("n").AsInt()))
		}, ode.P("n", ode.KindInt)).
		Read("getBalance", func(ctx *ode.MethodCtx) (ode.Value, error) {
			return ctx.Get("balance")
		})
}

func TestQuickstartFlow(t *testing.T) {
	db := openDB(t)
	f := newFires()
	err := balanceMethods(db.NewClass("account")).
		Trigger("Large(): perpetual after withdraw(a) && a > 100 ==> report", f.action("Large")).
		Register()
	if err != nil {
		t.Fatal(err)
	}

	var acct ode.OID
	if err := db.Transact(func(tx *ode.Tx) error {
		var err error
		acct, err = tx.NewObject("account", map[string]ode.Value{"balance": ode.Int(500)})
		if err != nil {
			return err
		}
		return tx.Activate(acct, "Large")
	}); err != nil {
		t.Fatal(err)
	}

	db.Transact(func(tx *ode.Tx) error {
		tx.Call(acct, "withdraw", ode.Int(50))
		tx.Call(acct, "withdraw", ode.Int(200))
		return nil
	})
	if f.count("Large") != 1 {
		t.Fatalf("Large fired %d times", f.count("Large"))
	}

	state, active, err := db.TriggerState(acct, "Large")
	if err != nil || !active {
		t.Fatalf("trigger state: %d %v %v", state, active, err)
	}
}

func TestBuiltinActions(t *testing.T) {
	db := openDB(t)
	logged := 0
	err := balanceMethods(db.NewClass("account")).
		Update("log", func(ctx *ode.MethodCtx) (ode.Value, error) {
			logged++
			return ode.Null(), nil
		}).
		Trigger("T6(): perpetual after withdraw(a) && a > 100 ==> log()", nil).
		Trigger("Block(): perpetual before deposit && n > 9000 ==> tabort", nil).
		Register()
	if err != nil {
		t.Fatal(err)
	}
	var acct ode.OID
	db.Transact(func(tx *ode.Tx) error {
		acct, _ = tx.NewObject("account", nil)
		tx.Activate(acct, "T6")
		return tx.Activate(acct, "Block")
	})
	db.Transact(func(tx *ode.Tx) error {
		_, err := tx.Call(acct, "withdraw", ode.Int(500))
		return err
	})
	if logged != 1 {
		t.Fatalf("log() ran %d times", logged)
	}
	err = db.Transact(func(tx *ode.Tx) error {
		_, err := tx.Call(acct, "deposit", ode.Int(10000))
		return err
	})
	if !errors.Is(err, ode.ErrTabort) {
		t.Fatalf("tabort builtin: %v", err)
	}
}

func TestDefinesAcrossClasses(t *testing.T) {
	db := openDB(t)
	f := newFires()
	defs := ode.NewDefines().
		Add("dayEnd", "at time(HR=17)").
		Add("dayBegin", "at time(HR=9)")
	err := balanceMethods(db.NewClass("account")).
		Defines(defs).
		Trigger("T3(): perpetual dayEnd ==> summary", f.action("T3")).
		Register()
	if err != nil {
		t.Fatal(err)
	}
	err = db.NewClass("vault").
		Field("sealed", ode.KindBool, ode.Bool(false)).
		Update("seal", func(ctx *ode.MethodCtx) (ode.Value, error) {
			return ode.Null(), ctx.Set("sealed", ode.Bool(true))
		}).
		Defines(defs).
		Trigger("Seal(): perpetual dayEnd ==> seal()", nil).
		Register()
	if err != nil {
		t.Fatal(err)
	}

	var acct, vault ode.OID
	db.Transact(func(tx *ode.Tx) error {
		acct, _ = tx.NewObject("account", nil)
		vault, _ = tx.NewObject("vault", nil)
		tx.Activate(acct, "T3")
		return tx.Activate(vault, "Seal")
	})
	db.Clock().Advance(10 * time.Hour) // past 17:00
	if f.count("T3") != 1 {
		t.Fatalf("T3 fired %d times", f.count("T3"))
	}
	var sealed ode.Value
	db.Transact(func(tx *ode.Tx) error {
		var err error
		sealed, err = tx.Get(vault, "sealed")
		return err
	})
	if !sealed.AsBool() {
		t.Fatal("vault not sealed at day end")
	}
}

func TestCouplingCombinatorStrings(t *testing.T) {
	got := ode.CouplingImmediateDeferred("after withdraw", "q > 0")
	want := "fa((after withdraw) && q > 0, before tcomplete, after tbegin)"
	if got != want {
		t.Fatalf("ImmediateDeferred = %q", got)
	}
	if s := ode.CouplingImmediateImmediate("after deposit", ""); s != "(after deposit)" {
		t.Fatalf("ImmediateImmediate no-cond = %q", s)
	}
	for name, s := range map[string]string{
		"II":   ode.CouplingImmediateImmediate("after deposit", "balance > 0"),
		"ID":   ode.CouplingImmediateDeferred("after deposit", "balance > 0"),
		"IDep": ode.CouplingImmediateDependent("after deposit", "balance > 0"),
		"IInd": ode.CouplingImmediateIndependent("after deposit", "balance > 0"),
		"DI":   ode.CouplingDeferredImmediate("after deposit", "balance > 0"),
		"DDep": ode.CouplingDeferredDependent("after deposit", "balance > 0"),
		"DInd": ode.CouplingDeferredIndependent("after deposit", "balance > 0"),
		"DepI": ode.CouplingDependentImmediate("after deposit", "balance > 0"),
		"IndI": ode.CouplingIndependentImmediate("after deposit", "balance > 0"),
	} {
		if s == "" {
			t.Fatalf("%s empty", name)
		}
	}
}

// TestCouplingModesEndToEnd registers one trigger per §7 coupling
// encoding and checks when each runs relative to the transaction.
func TestCouplingModesEndToEnd(t *testing.T) {
	db := openDB(t)
	f := newFires()
	ev := "after withdraw(a) && a > 100"
	cond := "balance >= 0"
	b := balanceMethods(db.NewClass("account"))
	for name, expr := range map[string]string{
		"II":   ode.CouplingImmediateImmediate(ev, cond),
		"ID":   ode.CouplingImmediateDeferred(ev, cond),
		"IDep": ode.CouplingImmediateDependent(ev, cond),
		"DI":   ode.CouplingDeferredImmediate(ev, cond),
		"DDep": ode.CouplingDeferredDependent(ev, cond),
		"DepI": ode.CouplingDependentImmediate(ev, cond),
	} {
		b = b.Trigger(name+"(): perpetual "+expr+" ==> act", f.action(name))
	}
	if err := b.Register(); err != nil {
		t.Fatal(err)
	}
	var acct ode.OID
	db.Transact(func(tx *ode.Tx) error {
		acct, _ = tx.NewObject("account", map[string]ode.Value{"balance": ode.Int(1000)})
		for _, name := range []string{"II", "ID", "IDep", "DI", "DDep", "DepI"} {
			if err := tx.Activate(acct, name); err != nil {
				return err
			}
		}
		return nil
	})

	var midTx map[string]int
	db.Transact(func(tx *ode.Tx) error {
		tx.Call(acct, "withdraw", ode.Int(500))
		midTx = map[string]int{}
		for _, name := range []string{"II", "ID", "IDep", "DI", "DDep", "DepI"} {
			midTx[name] = f.count(name)
		}
		return nil
	})

	// Immediately-coupled condition modes ran mid-transaction; commit-
	// coupled ones did not.
	if midTx["II"] != 1 {
		t.Fatalf("II mid-tx = %d", midTx["II"])
	}
	for _, name := range []string{"ID", "IDep", "DI", "DDep", "DepI"} {
		if midTx[name] != 0 {
			t.Fatalf("%s ran mid-transaction", name)
		}
	}
	// After commit all six ran exactly once.
	for _, name := range []string{"II", "ID", "IDep", "DI", "DDep", "DepI"} {
		if f.count(name) != 1 {
			t.Fatalf("%s = %d after commit", name, f.count(name))
		}
	}

	// An aborted transaction runs only the immediate mode (and its
	// effects are rolled back with the transaction).
	before := f.count("II")
	db.Transact(func(tx *ode.Tx) error {
		tx.Call(acct, "withdraw", ode.Int(500))
		return errors.New("abort")
	})
	if f.count("II") != before+1 {
		t.Fatalf("II after aborted tx = %d", f.count("II"))
	}
	for _, name := range []string{"ID", "IDep", "DI", "DDep", "DepI"} {
		if f.count(name) != 1 {
			t.Fatalf("%s ran for an aborted transaction", name)
		}
	}
}

// TestCouplingIndependentModes checks the abort-side couplings, which
// need the whole-history view.
func TestCouplingIndependentModes(t *testing.T) {
	db := openDB(t)
	f := newFires()
	ev := "after withdraw(a) && a > 100"
	err := balanceMethods(db.NewClass("account")).
		Trigger("IInd(): perpetual "+ode.CouplingImmediateIndependent(ev, "")+" ==> act", f.action("IInd")).
		View("IInd", ode.WholeView).
		Register()
	if err != nil {
		t.Fatal(err)
	}
	var acct ode.OID
	db.Transact(func(tx *ode.Tx) error {
		acct, _ = tx.NewObject("account", map[string]ode.Value{"balance": ode.Int(1000)})
		return tx.Activate(acct, "IInd")
	})
	// Committed transaction → runs once.
	db.Transact(func(tx *ode.Tx) error {
		tx.Call(acct, "withdraw", ode.Int(500))
		return nil
	})
	if f.count("IInd") != 1 {
		t.Fatalf("IInd after commit = %d", f.count("IInd"))
	}
	// Aborted transaction → also runs (independent coupling).
	db.Transact(func(tx *ode.Tx) error {
		tx.Call(acct, "withdraw", ode.Int(500))
		return errors.New("abort")
	})
	if f.count("IInd") != 2 {
		t.Fatalf("IInd after abort = %d", f.count("IInd"))
	}
}

func TestInspectAndCompileEvent(t *testing.T) {
	db := openDB(t)
	err := balanceMethods(db.NewClass("account")).
		Trigger("Seq(): perpetual after deposit; after withdraw ==> act",
			func(*ode.ActionCtx) error { return nil }).
		Register()
	if err != nil {
		t.Fatal(err)
	}
	autos, err := db.Inspect("account")
	if err != nil || len(autos) != 1 {
		t.Fatalf("Inspect: %v %v", autos, err)
	}
	a := autos[0]
	if a.States < 2 || a.Symbols < 10 || a.PerObjectBytes != 8 {
		t.Fatalf("automaton %+v", a)
	}
	if !strings.Contains(a.Dot(), "digraph") || a.Table() == "" {
		t.Fatal("rendering broken")
	}
	if _, err := db.Inspect("nosuch"); err == nil {
		t.Fatal("Inspect of unknown class succeeded")
	}

	cls := &ode.Class{
		Name: "probe",
		Methods: []ode.Method{
			{Name: "f", Mode: ode.ModeUpdate},
		},
	}
	auto, err := ode.CompileEvent(cls, "relative(after f, after f)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if auto.States != 3 {
		t.Fatalf("relative(f,f) has %d states", auto.States)
	}
	if _, err := ode.CompileEvent(cls, "after nosuch", nil); err == nil {
		t.Fatal("bad event compiled")
	}
}

func TestBuilderErrorPropagation(t *testing.T) {
	db := openDB(t)
	err := db.NewClass("bad").
		Trigger("oops(: after x ==> y", nil).
		Register()
	if err == nil {
		t.Fatal("syntax error swallowed")
	}
	err = balanceMethods(db.NewClass("bad2")).
		Trigger("T(): after deposit ==> unboundAction", nil).
		Register()
	if err == nil {
		t.Fatal("unbound action accepted")
	}
	err = balanceMethods(db.NewClass("bad3")).
		Trigger("T(): after deposit ==> nosuchmethod()", nil).
		Register()
	if err == nil {
		t.Fatal("unknown method action accepted")
	}
}

func TestPersistentReopen(t *testing.T) {
	dir := t.TempDir()
	f := newFires()
	register := func(db *ode.Database) error {
		return balanceMethods(db.NewClass("account")).
			Trigger("Two(): perpetual relative(after deposit, after deposit) ==> act", f.action("Two")).
			Register()
	}
	db, err := ode.Open(ode.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := register(db); err != nil {
		t.Fatal(err)
	}
	var acct ode.OID
	db.Transact(func(tx *ode.Tx) error {
		acct, _ = tx.NewObject("account", nil)
		return tx.Activate(acct, "Two")
	})
	db.Transact(func(tx *ode.Tx) error {
		tx.Call(acct, "deposit", ode.Int(1)) // first deposit: automaton mid-way
		return nil
	})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := ode.Open(ode.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := register(db2); err != nil {
		t.Fatal(err)
	}
	// The automaton state survived the restart: one more deposit fires.
	db2.Transact(func(tx *ode.Tx) error {
		tx.Call(acct, "deposit", ode.Int(1))
		return nil
	})
	if f.count("Two") != 1 {
		t.Fatalf("Two fired %d times after reopen", f.count("Two"))
	}
}
