GO ?= go

.PHONY: build test vet race fuzz sim verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-sensitive packages: the engine posts from many goroutines and
# the observability layer is read while posting; the txn and store
# substrates are exercised by the concurrency stress tests; the
# partitioned layer routes concurrent producers into single-writer
# loops over the cross-partition bus.
race:
	$(GO) test -race ./internal/engine/ ./internal/obs/ ./internal/txn/ ./internal/store/ ./internal/part/

# Short fuzz smoke over the event-language and mask parsers; longer
# campaigns:
# go test -fuzz FuzzParseEvent ./internal/evlang/
# go test -fuzz FuzzParseMask ./internal/mask/
fuzz:
	$(GO) test -fuzz FuzzParseEvent -fuzztime 5s -run '^$$' ./internal/evlang/
	$(GO) test -fuzz FuzzParseMask -fuzztime 5s -run '^$$' ./internal/mask/

# Deterministic-simulation smoke (the CI sim-short job): single-engine
# seeded runs plus the multi-partition scripts (per-partition WAL
# faults, independent recovery, bus determinism). Full torture
# campaigns run via `go run ./cmd/odebench -sim -iters N`.
sim:
	$(GO) test -race -run 'TestSimShort|TestMultipart' ./internal/sim/

# The tier-1 verification gate (see ROADMAP.md).
verify: build test vet race fuzz

# Engine benchmarks plus the E18 timer-storm sweep with the E12
# hot-path, E16 batch-posting and E17 partitioned-scaling reruns
# riding along — the reruns prove the existing paths did not regress
# while the timing wheel and cohort delivery replaced the timer core
# (committed as BENCH_PR9.json; earlier baselines are regenerated with
# `go run ./cmd/odebench -exp E12 -out BENCH_PR3.json`,
# `go run ./cmd/odebench -exp E13 -out BENCH_PR4.json`,
# `go run ./cmd/odebench -exp E15 -out BENCH_PR6.json`,
# `go run ./cmd/odebench -exp E16 -out BENCH_PR7.json`,
# `go run ./cmd/odebench -exp E17 -out BENCH_PR8.json`).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine' -benchmem .
	$(GO) run ./cmd/odebench -exp E18 -out BENCH_PR9.json
