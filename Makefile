GO ?= go

.PHONY: build test vet race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-sensitive packages: the engine posts from many goroutines and
# the observability layer is read while posting; the txn and store
# substrates are exercised by the concurrency stress tests.
race:
	$(GO) test -race ./internal/engine/ ./internal/obs/ ./internal/txn/ ./internal/store/

# The tier-1 verification gate (see ROADMAP.md).
verify: build test vet race

# Engine benchmarks plus the E12 hot-path and E11 parallel-posting
# numbers (committed as BENCH_PR3.json; BENCH_PR2.json is the previous
# PR's baseline and is regenerated with
# `go run ./cmd/odebench -exp E11 -out BENCH_PR2.json`).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine' -benchmem .
	$(GO) run ./cmd/odebench -exp E12 -out BENCH_PR3.json
