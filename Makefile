GO ?= go

.PHONY: build test vet race fuzz sim verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-sensitive packages: the engine posts from many goroutines and
# the observability layer is read while posting; the txn and store
# substrates are exercised by the concurrency stress tests; the
# partitioned layer routes concurrent producers into single-writer
# loops over the cross-partition bus; the egress feed is tailed by
# concurrent subscribers while commits append to it.
race:
	$(GO) test -race ./internal/engine/ ./internal/obs/ ./internal/txn/ ./internal/store/ ./internal/part/ ./internal/egress/

# Short fuzz smoke over the event-language and mask parsers and the
# egress record codec; longer campaigns:
# go test -fuzz FuzzParseEvent ./internal/evlang/
# go test -fuzz FuzzParseMask ./internal/mask/
# go test -fuzz FuzzRecordCodec ./internal/egress/
fuzz:
	$(GO) test -fuzz FuzzParseEvent -fuzztime 5s -run '^$$' ./internal/evlang/
	$(GO) test -fuzz FuzzParseMask -fuzztime 5s -run '^$$' ./internal/mask/
	$(GO) test -fuzz FuzzRecordCodec -fuzztime 5s -run '^$$' ./internal/egress/

# Deterministic-simulation smoke (the CI sim-short job): single-engine
# seeded runs, the multi-partition scripts (per-partition WAL faults,
# independent recovery, bus determinism), and the egress family
# (deliverer crashes, cursor tears, exactly-once ledger; -short keeps
# the egress torture at smoke size). Full torture campaigns run via
# `go run ./cmd/odebench -sim -iters N`.
sim:
	$(GO) test -race -short -run 'TestSimShort|TestMultipart|TestEgress' ./internal/sim/

# The tier-1 verification gate (see ROADMAP.md).
verify: build test vet race fuzz

# Engine benchmarks plus the E19 egress-overhead sweep: the E12
# single-post and E16 batch hot paths rerun with the durable firing
# feed on vs off, plus deliverer drain throughput (committed as
# BENCH_PR10.json; earlier baselines are regenerated with
# `go run ./cmd/odebench -exp E12 -out BENCH_PR3.json`,
# `go run ./cmd/odebench -exp E13 -out BENCH_PR4.json`,
# `go run ./cmd/odebench -exp E15 -out BENCH_PR6.json`,
# `go run ./cmd/odebench -exp E16 -out BENCH_PR7.json`,
# `go run ./cmd/odebench -exp E17 -out BENCH_PR8.json`,
# `go run ./cmd/odebench -exp E18 -out BENCH_PR9.json`).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine' -benchmem .
	$(GO) run ./cmd/odebench -exp E19 -out BENCH_PR10.json
