GO ?= go

.PHONY: build test vet race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-sensitive packages: the engine posts from many goroutines and
# the observability layer is read while posting.
race:
	$(GO) test -race ./internal/engine/ ./internal/obs/

# The tier-1 verification gate (see ROADMAP.md).
verify: build test vet race

bench:
	$(GO) test -run xxx -bench . -benchtime 1000x .
