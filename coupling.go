package ode

import "fmt"

// The Event-Action model (§7). The paper's central simplification is
// that all 4×4 E-C-A coupling modes collapse into plain event
// expressions over transaction events. These combinators produce the
// paper's nine canonical encodings verbatim: E is any event
// expression, C a condition (mask). The resulting string is a trigger
// event usable anywhere an event is.
//
// A condition of "" means "true" and is elided.

func wrapCond(e, c string) string {
	if c == "" {
		return "(" + e + ")"
	}
	return "(" + e + ") && " + c
}

// CouplingImmediateImmediate: condition checked and action run at the
// event, in the triggering transaction.
//
//	E && C ==> A
func CouplingImmediateImmediate(e, c string) string {
	return wrapCond(e, c)
}

// CouplingImmediateDeferred: condition checked at the event, action
// deferred to just before the triggering transaction commits.
//
//	fa(E && C, before tcomplete, after tbegin) ==> A
func CouplingImmediateDeferred(e, c string) string {
	return fmt.Sprintf("fa(%s, before tcomplete, after tbegin)", wrapCond(e, c))
}

// CouplingImmediateDependent: condition checked at the event, action
// run after the triggering transaction commits (and only then).
//
//	fa(E && C, after tcommit, after tbegin) ==> A
func CouplingImmediateDependent(e, c string) string {
	return fmt.Sprintf("fa(%s, after tcommit, after tbegin)", wrapCond(e, c))
}

// CouplingImmediateIndependent: condition checked at the event, action
// run after the triggering transaction finishes either way.
//
//	fa(E && C, after tcommit | after tabort, after tbegin) ==> A
//
// Observing aborts requires the whole-history view (§6).
func CouplingImmediateIndependent(e, c string) string {
	return fmt.Sprintf("fa(%s, after tcommit | after tabort, after tbegin)", wrapCond(e, c))
}

// CouplingDeferredImmediate: condition checked just before commit
// (equivalently Deferred-Deferred), action run there too.
//
//	fa(E, before tcomplete, after tbegin) && C ==> A
func CouplingDeferredImmediate(e, c string) string {
	out := fmt.Sprintf("fa(%s, before tcomplete, after tbegin)", "("+e+")")
	if c != "" {
		out = "(" + out + ") && " + c
	}
	return out
}

// CouplingDeferredDependent: condition checked just before commit,
// action run after the commit.
//
//	fa(fa(E, before tcomplete, after tbegin) && C,
//	   after tcommit, after tbegin) ==> A
func CouplingDeferredDependent(e, c string) string {
	return fmt.Sprintf("fa(%s, after tcommit, after tbegin)",
		wrapCond(fmt.Sprintf("fa((%s), before tcomplete, after tbegin)", e), c))
}

// CouplingDeferredIndependent: condition checked just before commit,
// action run after the transaction finishes either way.
//
//	fa(fa(E, before tcomplete, after tbegin) && C,
//	   after tcommit | after tabort, after tbegin) ==> A
func CouplingDeferredIndependent(e, c string) string {
	return fmt.Sprintf("fa(%s, after tcommit | after tabort, after tbegin)",
		wrapCond(fmt.Sprintf("fa((%s), before tcomplete, after tbegin)", e), c))
}

// CouplingDependentImmediate: condition checked (and action run) right
// after the triggering transaction commits.
//
//	fa(E, after tcommit, after tbegin) && C ==> A
func CouplingDependentImmediate(e, c string) string {
	out := fmt.Sprintf("fa((%s), after tcommit, after tbegin)", e)
	if c != "" {
		out = "(" + out + ") && " + c
	}
	return out
}

// CouplingIndependentImmediate: condition checked (and action run)
// after the triggering transaction finishes either way.
//
//	fa(E, after tcommit | after tabort, after tbegin) && C ==> A
func CouplingIndependentImmediate(e, c string) string {
	out := fmt.Sprintf("fa((%s), after tcommit | after tabort, after tbegin)", e)
	if c != "" {
		out = "(" + out + ") && " + c
	}
	return out
}
