// Quickstart: one class, one composite trigger, three transactions.
//
// The trigger uses the paper's §3.2 running example — a "large
// withdrawal" logical event — inside a relative() composition: report
// when a large withdrawal is later followed by another withdrawal.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ode"
)

func main() {
	db, err := ode.Open(ode.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	err = db.NewClass("account").
		Field("balance", ode.KindInt, ode.Int(0)).
		Update("deposit", func(ctx *ode.MethodCtx) (ode.Value, error) {
			b, _ := ctx.Get("balance")
			return ode.Null(), ctx.Set("balance", ode.Int(b.AsInt()+ctx.Arg("amount").AsInt()))
		}, ode.P("amount", ode.KindInt)).
		Update("withdraw", func(ctx *ode.MethodCtx) (ode.Value, error) {
			b, _ := ctx.Get("balance")
			return ode.Null(), ctx.Set("balance", ode.Int(b.AsInt()-ctx.Arg("amount").AsInt()))
		}, ode.P("amount", ode.KindInt)).
		Trigger("Watch(): perpetual relative(after withdraw(a) && a > 1000, after withdraw) ==> report",
			func(ctx *ode.ActionCtx) error {
				b, _ := ctx.Tx.Get(ctx.Self, "balance")
				fmt.Printf("  [trigger Watch] withdrawal after a large one; balance now %s\n", b)
				return nil
			}).
		Register()
	if err != nil {
		log.Fatal(err)
	}

	var acct ode.OID
	must(db.Transact(func(tx *ode.Tx) error {
		acct, err = tx.NewObject("account", map[string]ode.Value{"balance": ode.Int(5000)})
		if err != nil {
			return err
		}
		return tx.Activate(acct, "Watch")
	}))

	fmt.Println("tx 1: deposit 100, withdraw 2000 (large)")
	must(db.Transact(func(tx *ode.Tx) error {
		if _, err := tx.Call(acct, "deposit", ode.Int(100)); err != nil {
			return err
		}
		_, err := tx.Call(acct, "withdraw", ode.Int(2000))
		return err
	}))

	fmt.Println("tx 2: withdraw 50 (fires: follows a large withdrawal)")
	must(db.Transact(func(tx *ode.Tx) error {
		_, err := tx.Call(acct, "withdraw", ode.Int(50))
		return err
	}))

	fmt.Println("tx 3: withdraw 25 (fires again: perpetual trigger)")
	must(db.Transact(func(tx *ode.Tx) error {
		_, err := tx.Call(acct, "withdraw", ode.Int(25))
		return err
	}))

	state, active, _ := db.TriggerState(acct, "Watch")
	fmt.Printf("done: trigger state is the single integer %d (active=%v)\n", state, active)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
