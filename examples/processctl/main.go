// Processctl reproduces the paper's §3.5 process-control example: a
// vessel whose trigger watches for a pressure drop followed by a valve
// opening, where "valve open" is itself the composite event of a motor
// start completing and then a motor stop completing:
//
//	#define pDrop     (pressure < low_limit)
//	#define valveOpen relative(after motorStart, after motorStop)
//	T(): relative(pDrop, valveOpen) ==> checkPressure
//
// pDrop uses the object-state shorthand: it is sugar for
// (after update | after create) && pressure < low_limit.
//
//	go run ./examples/processctl
package main

import (
	"fmt"
	"log"

	"ode"
)

func main() {
	db, err := ode.Open(ode.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	defs := ode.NewDefines().
		Add("pDrop", "pressure < low_limit").
		Add("valveOpen", "relative(after motorStart, after motorStop)")

	err = db.NewClass("vessel").
		Defines(defs).
		Field("pressure", ode.KindFloat, ode.Float(10.0)).
		Field("low_limit", ode.KindFloat, ode.Float(3.0)).
		Field("motorOn", ode.KindBool, ode.Bool(false)).
		Update("setPressure", func(ctx *ode.MethodCtx) (ode.Value, error) {
			return ode.Null(), ctx.Set("pressure", ctx.Arg("p"))
		}, ode.P("p", ode.KindFloat)).
		Update("motorStart", func(ctx *ode.MethodCtx) (ode.Value, error) {
			return ode.Null(), ctx.Set("motorOn", ode.Bool(true))
		}).
		Update("motorStop", func(ctx *ode.MethodCtx) (ode.Value, error) {
			return ode.Null(), ctx.Set("motorOn", ode.Bool(false))
		}).
		Trigger("T(): relative(pDrop, valveOpen) ==> checkPressure",
			func(ctx *ode.ActionCtx) error {
				p, _ := ctx.Tx.Get(ctx.Self, "pressure")
				fmt.Printf("  [trigger T] valve cycled after a pressure drop — check pressure (now %.1f)\n",
					p.AsFloat())
				return nil
			}).
		Register()
	if err != nil {
		log.Fatal(err)
	}

	var vessel ode.OID
	must(db.Transact(func(tx *ode.Tx) error {
		vessel, err = tx.NewObject("vessel", nil)
		if err != nil {
			return err
		}
		return tx.Activate(vessel, "T")
	}))

	step := func(what string, fn func(tx *ode.Tx) error) {
		fmt.Println(what)
		must(db.Transact(fn))
	}

	step("cycle the valve at normal pressure (no pDrop yet: no fire)", func(tx *ode.Tx) error {
		tx.Call(vessel, "motorStart")
		_, err := tx.Call(vessel, "motorStop")
		return err
	})
	step("pressure drops to 2.5 (below low_limit 3.0)", func(tx *ode.Tx) error {
		_, err := tx.Call(vessel, "setPressure", ode.Float(2.5))
		return err
	})
	step("valve opens: motorStart then motorStop → trigger fires at motorStop", func(tx *ode.Tx) error {
		tx.Call(vessel, "motorStart")
		_, err := tx.Call(vessel, "motorStop")
		return err
	})
	step("the trigger is ordinary (not perpetual): a second cycle is silent", func(tx *ode.Tx) error {
		tx.Call(vessel, "setPressure", ode.Float(2.0))
		tx.Call(vessel, "motorStart")
		_, err := tx.Call(vessel, "motorStop")
		return err
	})
	step("re-activating re-arms it", func(tx *ode.Tx) error {
		if err := tx.Activate(vessel, "T"); err != nil {
			return err
		}
		tx.Call(vessel, "setPressure", ode.Float(1.5))
		tx.Call(vessel, "motorStart")
		_, err := tx.Call(vessel, "motorStop")
		return err
	})
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
