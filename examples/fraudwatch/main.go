// Fraudwatch uses the Ode event algebra as a complex-event-processing
// engine — the lineage the paper started (modern CEP systems implement
// close variants of these operators). A card object receives purchase
// events; composite triggers recognize fraud signatures:
//
//	CardTesting  two tiny purchases immediately followed by a large
//	             one (sequence of masked logical events)
//	GeoJump      a purchase in the EU followed by one in the US with
//	             no settlement in between (fa with a guard)
//	Velocity     the 5th purchase since the start of the day
//	             (relative + choose + timer events, the paper's T4/T7
//	             pattern)
//	Blocked      any purchase on a blocked card aborts the transaction
//	             (object-state mask + tabort)
//
//	go run ./examples/fraudwatch
package main

import (
	"fmt"
	"log"
	"time"

	"ode"
)

func main() {
	db, err := ode.Open(ode.Options{Start: time.Date(2026, 7, 5, 23, 30, 0, 0, time.UTC)})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	alert := func(name, msg string) ode.ActionFunc {
		return func(ctx *ode.ActionCtx) error {
			// The triggering happening's parameters are available to
			// the action (an extension over the paper; its §9 lists
			// event arguments as future work).
			amt := ctx.EventParams["amt"]
			fmt.Printf("  !! [%s] %s (last purchase: %s)\n", name, msg, amt)
			return nil
		}
	}

	defs := ode.NewDefines().Add("dayBegin", "at time(HR=0)")

	err = db.NewClass("card").
		Defines(defs).
		Field("holder", ode.KindString, ode.Null()).
		Field("blocked", ode.KindBool, ode.Bool(false)).
		Field("spent", ode.KindFloat, ode.Float(0)).
		Update("purchase", func(ctx *ode.MethodCtx) (ode.Value, error) {
			s, _ := ctx.Get("spent")
			return ode.Null(), ctx.Set("spent", ode.Float(s.AsFloat()+ctx.Arg("amt").AsFloat()))
		}, ode.P("amt", ode.KindFloat), ode.P("region", ode.KindString)).
		Update("settle", func(ctx *ode.MethodCtx) (ode.Value, error) {
			return ode.Null(), ctx.Set("spent", ode.Float(0))
		}).
		Update("block", func(ctx *ode.MethodCtx) (ode.Value, error) {
			return ode.Null(), ctx.Set("blocked", ode.Bool(true))
		}).
		// Method calls post BOTH before- and after-events, and sequence
		// demands strict adjacency, so the signature masks the before-
		// events too.
		Trigger(`CardTesting(): perpetual after purchase(a, r) && a < 5.0;
		                        before purchase(a, r) && a < 5.0;
		                        after purchase(a, r) && a < 5.0;
		                        before purchase(a, r) && a > 500.0;
		                        after purchase(a, r) && a > 500.0 ==> act`,
			alert("card-testing", "two micro-purchases immediately before a large one")).
		Trigger(`GeoJump(): perpetual fa(after purchase(a, r) && r == "EU",
		                                 after purchase(a, r) && r == "US",
		                                 after settle) ==> act`,
			alert("geo-jump", "EU purchase then US purchase with no settlement between")).
		Trigger("Velocity(): perpetual relative(dayBegin, choose 5 (after purchase) & !prior(dayBegin, after purchase)) ==> act",
			alert("velocity", "fifth purchase since midnight")).
		Trigger("Blocked(): perpetual before purchase && blocked ==> tabort", nil).
		Register()
	if err != nil {
		log.Fatal(err)
	}

	var card ode.OID
	must(db.Transact(func(tx *ode.Tx) error {
		card, err = tx.NewObject("card", map[string]ode.Value{"holder": ode.Str("carol")})
		if err != nil {
			return err
		}
		for _, trig := range []string{"CardTesting", "GeoJump", "Velocity", "Blocked"} {
			if err := tx.Activate(card, trig); err != nil {
				return err
			}
		}
		return nil
	}))

	buy := func(amt float64, region string) {
		err := db.Transact(func(tx *ode.Tx) error {
			_, err := tx.Call(card, "purchase", ode.Float(amt), ode.Str(region))
			return err
		})
		if err != nil {
			fmt.Printf("  purchase of %.2f DECLINED: %v\n", amt, err)
			return
		}
		fmt.Printf("  purchase %.2f %s\n", amt, region)
	}

	db.Clock().Advance(10 * time.Hour) // 09:30 next day, past the midnight tick
	fmt.Println("-- a normal morning --")
	buy(23.40, "EU")
	buy(61.10, "EU")

	fmt.Println("-- card-testing signature (one transaction) --")
	must(db.Transact(func(tx *ode.Tx) error {
		for _, amt := range []float64{1.00, 2.00, 950.00} {
			if _, err := tx.Call(card, "purchase", ode.Float(amt), ode.Str("EU")); err != nil {
				return err
			}
		}
		return nil
	}))

	fmt.Println("-- geo jump (also the 5th+ purchase of the day) --")
	buy(480.00, "US")

	fmt.Println("-- the bank blocks the card --")
	must(db.Transact(func(tx *ode.Tx) error {
		_, err := tx.Call(card, "block")
		return err
	}))
	buy(10.00, "US")

	var spent ode.Value
	db.Transact(func(tx *ode.Tx) error {
		var err error
		spent, err = tx.Get(card, "spent")
		return err
	})
	fmt.Printf("total spent on card: %.2f\n", spent.AsFloat())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
