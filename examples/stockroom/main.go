// Stockroom reproduces the paper's §3.5 running example: the stockRoom
// class with its eight triggers T1–T8, driven through two simulated
// business days on the virtual clock.
//
//	T1: only authorized users may withdraw (tabort otherwise)
//	T2: re-order an item when its stock falls below the reorder level
//	T3: print a summary at the end of the day
//	T4: report every transaction after the 5th of the same day
//	T5: update averages every 5 operations
//	T6: record all large withdrawals (q > 100)
//	T7: print a summary after the 5th large withdrawal of the day
//	T8: print the log when a deposit is immediately followed by a withdrawal
//
// One deviation from the paper's listing: its T2 action is "order(i)",
// passing the event parameter i into the action. The paper itself
// lists "the incorporation of arguments into composite event
// specification" as future work (§9), so, as an Ode user would have,
// the withdraw method records the item in a lastItem field the order()
// action reads.
//
//	go run ./examples/stockroom
package main

import (
	"fmt"
	"log"
	"time"

	"ode"
)

var currentUser = "alice"

func main() {
	db, err := ode.Open(ode.Options{Start: time.Date(2026, 7, 6, 8, 0, 0, 0, time.UTC)})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	db.RegisterFunc("user", func([]ode.Value) (ode.Value, error) {
		return ode.Str(currentUser), nil
	})

	if err := registerItem(db); err != nil {
		log.Fatal(err)
	}
	room, items, err := registerStockRoom(db)
	if err != nil {
		log.Fatal(err)
	}

	say := func(f string, a ...any) {
		fmt.Printf("%s  %s\n", db.Clock().Now().Format("Mon 15:04"), fmt.Sprintf(f, a...))
	}

	// ---- Day 1 ----
	db.Clock().Advance(90 * time.Minute) // 09:30, past dayBegin
	say("day 1 opens")

	withdraw := func(item ode.OID, qty int64) error {
		return db.Transact(func(tx *ode.Tx) error {
			_, err := tx.Call(room, "withdraw", ode.Ref(item), ode.Int(qty))
			return err
		})
	}
	deposit := func(item ode.OID, qty int64) error {
		return db.Transact(func(tx *ode.Tx) error {
			_, err := tx.Call(room, "deposit", ode.Ref(item), ode.Int(qty))
			return err
		})
	}

	must(deposit(items["bolts"], 1000))

	// T8 needs the withdrawal *immediately* after the deposit: within
	// one transaction (commit-time transaction events break adjacency
	// across transactions) and with no trigger action posting events in
	// between — T5's updateAverages would intervene if this landed on a
	// multiple of five accesses.
	must(db.Transact(func(tx *ode.Tx) error {
		if _, err := tx.Call(room, "deposit", ode.Ref(items["bolts"]), ode.Int(5)); err != nil {
			return err
		}
		_, err := tx.Call(room, "withdraw", ode.Ref(items["bolts"]), ode.Int(5))
		return err
	}))

	must(withdraw(items["bolts"], 150)) // large → T6
	must(withdraw(items["gears"], 30))

	currentUser = "mallory"
	if err := withdraw(items["gears"], 10); err != nil {
		say("T1 blocked mallory's withdrawal: %v", err)
	}
	currentUser = "alice"

	// Drain gears below its reorder level → T2.
	must(withdraw(items["gears"], 55))

	// More business: pass the 5th commit of the day → T4 reports.
	for i := 0; i < 4; i++ {
		must(deposit(items["bolts"], 10))
	}

	// Large withdrawals towards T7's fifth-of-the-day.
	for i := 0; i < 5; i++ {
		must(withdraw(items["bolts"], 120))
	}

	db.Clock().Advance(10 * time.Hour) // past 17:00 → T3 summary
	say("day 1 closes")

	// ---- Day 2 ----
	db.Clock().AdvanceTo(time.Date(2026, 7, 7, 9, 30, 0, 0, time.UTC))
	say("day 2 opens (counters reset by dayBegin)")
	must(deposit(items["gears"], 200))
	must(withdraw(items["gears"], 140)) // large, but only the 1st today
	db.Clock().Advance(9 * time.Hour)   // 18:30 → T3 again
	say("day 2 closes")

	if errs := db.Engine().TimerErrors(); len(errs) > 0 {
		log.Fatalf("timer errors: %v", errs)
	}
}

func registerItem(db *ode.Database) error {
	return db.NewClass("item").
		Field("name", ode.KindString, ode.Null()).
		Field("stock", ode.KindInt, ode.Int(0)).
		Field("reorderLevel", ode.KindInt, ode.Int(20)).
		Field("onOrder", ode.KindBool, ode.Bool(false)).
		Update("take", func(ctx *ode.MethodCtx) (ode.Value, error) {
			s, _ := ctx.Get("stock")
			n := ctx.Arg("n").AsInt()
			if s.AsInt() < n {
				return ode.Null(), fmt.Errorf("item: insufficient stock")
			}
			return ode.Null(), ctx.Set("stock", ode.Int(s.AsInt()-n))
		}, ode.P("n", ode.KindInt)).
		Update("add", func(ctx *ode.MethodCtx) (ode.Value, error) {
			s, _ := ctx.Get("stock")
			return ode.Null(), ctx.Set("stock", ode.Int(s.AsInt()+ctx.Arg("n").AsInt()))
		}, ode.P("n", ode.KindInt)).
		Register()
}

func registerStockRoom(db *ode.Database) (ode.OID, map[string]ode.OID, error) {
	defs := ode.NewDefines().
		Add("dayBegin", "at time(HR=9)").
		Add("dayEnd", "at time(HR=17)").
		Add("FifthLrgWdr", "choose 5 (after withdraw(i, q) && q > 100)")

	now := func(db *ode.Database) string { return db.Clock().Now().Format("Mon 15:04") }

	b := db.NewClass("stockRoom").
		Defines(defs).
		Field("n", ode.KindInt, ode.Int(0)).        // operations counter
		Field("logCount", ode.KindInt, ode.Int(0)). // large-withdrawal log
		Field("lastItem", ode.KindID, ode.Null()).
		Update("deposit", func(ctx *ode.MethodCtx) (ode.Value, error) {
			if _, err := ctx.Tx.Call(ode.OID(ctx.Arg("i").AsID()), "add", ctx.Arg("q")); err != nil {
				return ode.Null(), err
			}
			n, _ := ctx.Get("n")
			return ode.Null(), ctx.Set("n", ode.Int(n.AsInt()+1))
		}, ode.P("i", ode.KindID), ode.P("q", ode.KindInt)).
		Update("withdraw", func(ctx *ode.MethodCtx) (ode.Value, error) {
			if err := ctx.Set("lastItem", ctx.Arg("i")); err != nil {
				return ode.Null(), err
			}
			if _, err := ctx.Tx.Call(ode.OID(ctx.Arg("i").AsID()), "take", ctx.Arg("q")); err != nil {
				return ode.Null(), err
			}
			n, _ := ctx.Get("n")
			return ode.Null(), ctx.Set("n", ode.Int(n.AsInt()+1))
		}, ode.P("i", ode.KindID), ode.P("q", ode.KindInt)).
		Func("authorized", func(args []ode.Value) (ode.Value, error) {
			u := args[0].AsString()
			return ode.Bool(u == "alice" || u == "bob"), nil
		}).
		Update("order", func(ctx *ode.MethodCtx) (ode.Value, error) {
			it, _ := ctx.Get("lastItem")
			if it.IsNull() {
				return ode.Null(), nil
			}
			item := ode.OID(it.AsID())
			name, _ := ctx.Tx.Get(item, "name")
			if err := ctx.Tx.Set(item, "onOrder", ode.Bool(true)); err != nil {
				return ode.Null(), err
			}
			fmt.Printf("%s    [T2] stock of %s below reorder level → purchase order placed\n", now(db), name)
			return ode.Null(), nil
		}).
		Update("logOp", func(ctx *ode.MethodCtx) (ode.Value, error) {
			c, _ := ctx.Get("logCount")
			if err := ctx.Set("logCount", ode.Int(c.AsInt()+1)); err != nil {
				return ode.Null(), err
			}
			fmt.Printf("%s    [T6] large withdrawal recorded (log size %d)\n", now(db), c.AsInt()+1)
			return ode.Null(), nil
		}).
		Read("summary", func(ctx *ode.MethodCtx) (ode.Value, error) {
			n, _ := ctx.Get("n")
			lc, _ := ctx.Get("logCount")
			fmt.Printf("%s    [summary] %d operations so far, %d large withdrawals logged\n",
				now(db), n.AsInt(), lc.AsInt())
			return ode.Null(), nil
		}).
		Read("report", func(ctx *ode.MethodCtx) (ode.Value, error) {
			fmt.Printf("%s    [T4] busy day: another transaction after today's 5th commit\n", now(db))
			return ode.Null(), nil
		}).
		Read("printLog", func(ctx *ode.MethodCtx) (ode.Value, error) {
			lc, _ := ctx.Get("logCount")
			fmt.Printf("%s    [T8] deposit immediately followed by withdrawal — log has %d entries\n",
				now(db), lc.AsInt())
			return ode.Null(), nil
		}).
		Update("updateAverages", func(ctx *ode.MethodCtx) (ode.Value, error) {
			fmt.Printf("%s    [T5] five more operations: averages updated\n", now(db))
			return ode.Null(), nil
		}).
		Trigger("T1(): perpetual before withdraw && !authorized(user()) ==> tabort", nil).
		Trigger("T2(): perpetual after withdraw(i, q) && i.stock < i.reorderLevel ==> order()", nil).
		Trigger("T3(): perpetual dayEnd ==> summary()", nil).
		Trigger("T4(): perpetual relative(dayBegin, prior(choose 5 (after tcommit), after tcommit) & !prior(dayBegin, after tcommit)) ==> report()", nil).
		Trigger("T5(): perpetual every 5 (after access) ==> updateAverages()", nil).
		Trigger("T6(): perpetual after withdraw(i, q) && q > 100 ==> logOp()", nil).
		Trigger("T7(): perpetual fa(dayBegin, FifthLrgWdr, dayBegin) ==> summary()", nil).
		Trigger("T8(): perpetual after deposit; before withdraw; after withdraw ==> printLog()", nil)
	if err := b.Register(); err != nil {
		return 0, nil, err
	}

	var room ode.OID
	items := map[string]ode.OID{}
	err := db.Transact(func(tx *ode.Tx) error {
		for _, name := range []string{"bolts", "gears"} {
			oid, err := tx.NewObject("item", map[string]ode.Value{
				"name":  ode.Str(name),
				"stock": ode.Int(100),
			})
			if err != nil {
				return err
			}
			items[name] = oid
		}
		var err error
		room, err = tx.NewObject("stockRoom", nil)
		if err != nil {
			return err
		}
		// "The initial activation can be specified in the constructor"
		// (§3.5): activate all eight.
		for _, trig := range []string{"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8"} {
			if err := tx.Activate(room, trig); err != nil {
				return err
			}
		}
		return nil
	})
	return room, items, err
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
