// Banking demonstrates the Event-Action model of the paper's §7: all
// E-C-A coupling modes expressed as plain event expressions over
// transaction events, on a bank-account class. It also shows the §6
// history views: a committed-view trigger versus a whole-history
// trigger watching aborts.
//
//	go run ./examples/banking
package main

import (
	"errors"
	"fmt"
	"log"

	"ode"
)

func main() {
	db, err := ode.Open(ode.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	event := "after withdraw(a) && a > 1000" // E: a large withdrawal
	cond := "balance < 5000"                 // C: the account is getting low

	say := func(tag, msg string) ode.ActionFunc {
		return func(ctx *ode.ActionCtx) error {
			b, _ := ctx.Tx.Get(ctx.Self, "balance")
			fmt.Printf("  [%s] %s (balance %d)\n", tag, msg, b.AsInt())
			return nil
		}
	}

	err = db.NewClass("account").
		Field("balance", ode.KindInt, ode.Int(0)).
		Field("overdrawn", ode.KindBool, ode.Bool(false)).
		Update("deposit", func(ctx *ode.MethodCtx) (ode.Value, error) {
			b, _ := ctx.Get("balance")
			return ode.Null(), ctx.Set("balance", ode.Int(b.AsInt()+ctx.Arg("n").AsInt()))
		}, ode.P("n", ode.KindInt)).
		Update("withdraw", func(ctx *ode.MethodCtx) (ode.Value, error) {
			b, _ := ctx.Get("balance")
			return ode.Null(), ctx.Set("balance", ode.Int(b.AsInt()-ctx.Arg("n").AsInt()))
		}, ode.P("n", ode.KindInt)).
		// §7 coupling modes, each a plain event expression:
		Trigger("II(): perpetual "+ode.CouplingImmediateImmediate(event, cond)+" ==> act",
			say("immediate-immediate", "condition and action at the event itself")).
		Trigger("ID(): perpetual "+ode.CouplingImmediateDeferred(event, cond)+" ==> act",
			say("immediate-deferred", "action deferred to just before commit")).
		Trigger("IDep(): perpetual "+ode.CouplingImmediateDependent(event, cond)+" ==> act",
			say("immediate-dependent", "action after the commit, in a system transaction")).
		Trigger("DI(): perpetual "+ode.CouplingDeferredImmediate(event, cond)+" ==> act",
			say("deferred-immediate", "condition checked just before commit")).
		// §6: a whole-history trigger sees aborted work; the balance<0
		// guard is the paper's "balance falls below" state shorthand.
		Trigger("Aborted(): perpetual after tabort ==> act",
			say("whole-history", "a transaction touching this account aborted")).
		View("Aborted", ode.WholeView).
		Trigger("Low(): perpetual balance < 500 ==> act",
			say("state-event", "balance fell below 500")).
		Register()
	if err != nil {
		log.Fatal(err)
	}

	var acct ode.OID
	must(db.Transact(func(tx *ode.Tx) error {
		acct, err = tx.NewObject("account", map[string]ode.Value{"balance": ode.Int(6000)})
		if err != nil {
			return err
		}
		for _, trig := range []string{"II", "ID", "IDep", "DI", "Aborted", "Low"} {
			if err := tx.Activate(acct, trig); err != nil {
				return err
			}
		}
		return nil
	}))

	fmt.Println("tx 1: withdraw 2000 (large; balance 4000 < 5000 ⇒ C holds)")
	must(db.Transact(func(tx *ode.Tx) error {
		_, err := tx.Call(acct, "withdraw", ode.Int(2000))
		if err != nil {
			return err
		}
		fmt.Println("  -- still inside the transaction --")
		return nil
	}))
	fmt.Println("  -- transaction committed --")

	fmt.Println("tx 2: withdraw 1500, then abort (only immediate modes ran; rolled back)")
	db.Transact(func(tx *ode.Tx) error {
		tx.Call(acct, "withdraw", ode.Int(1500))
		return errors.New("user cancelled")
	})

	fmt.Println("tx 3: drain the account below 500")
	must(db.Transact(func(tx *ode.Tx) error {
		_, err := tx.Call(acct, "withdraw", ode.Int(3600))
		return err
	}))

	var final ode.Value
	db.Transact(func(tx *ode.Tx) error {
		final, err = tx.Get(acct, "balance")
		return err
	})
	fmt.Printf("final balance: %d\n", final.AsInt())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
