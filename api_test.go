package ode_test

import (
	"strings"
	"testing"
	"time"

	"ode"
)

func TestValueConstructorsAndRef(t *testing.T) {
	if ode.Int(3).AsInt() != 3 || ode.Float(1.5).AsFloat() != 1.5 {
		t.Fatal("numeric constructors")
	}
	if !ode.Bool(true).AsBool() || ode.Str("x").AsString() != "x" {
		t.Fatal("bool/str constructors")
	}
	if !ode.Null().IsNull() {
		t.Fatal("null")
	}
	now := time.Unix(5, 0)
	if !ode.TimeVal(now).AsTime().Equal(now) {
		t.Fatal("time")
	}
	if ode.Ref(7).AsID() != 7 {
		t.Fatal("ref")
	}
}

func TestDefinesAddPanicsOnBadSyntax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad define accepted")
		}
	}()
	ode.NewDefines().Add("broken", "relative(after")
}

func TestStatsThroughRootAPI(t *testing.T) {
	db := openDB(t)
	f := newFires()
	err := balanceMethods(db.NewClass("account")).
		Trigger("T(): perpetual after deposit ==> act", f.action("T")).
		Register()
	if err != nil {
		t.Fatal(err)
	}
	var acct ode.OID
	db.Transact(func(tx *ode.Tx) error {
		acct, _ = tx.NewObject("account", nil)
		return tx.Activate(acct, "T")
	})
	db.Transact(func(tx *ode.Tx) error {
		_, err := tx.Call(acct, "deposit", ode.Int(1))
		return err
	})
	s := db.Stats()
	if s.TxCommitted < 2 || s.Firings < 1 || s.Happenings == 0 || s.Steps == 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestShadowOracleThroughRootAPI(t *testing.T) {
	db, err := ode.Open(ode.Options{ShadowOracle: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	f := newFires()
	err = balanceMethods(db.NewClass("account")).
		Trigger("Seq(): perpetual after deposit; before withdraw; after withdraw ==> act", f.action("Seq")).
		Register()
	if err != nil {
		t.Fatal(err)
	}
	var acct ode.OID
	db.Transact(func(tx *ode.Tx) error {
		acct, _ = tx.NewObject("account", nil)
		return tx.Activate(acct, "Seq")
	})
	if err := db.Transact(func(tx *ode.Tx) error {
		tx.Call(acct, "deposit", ode.Int(1))
		_, err := tx.Call(acct, "withdraw", ode.Int(1))
		return err
	}); err != nil {
		t.Fatalf("shadow oracle flagged a divergence: %v", err)
	}
	if f.count("Seq") != 1 {
		t.Fatalf("fires = %d", f.count("Seq"))
	}
}

func TestCombinedAutomataThroughRootAPI(t *testing.T) {
	db, err := ode.Open(ode.Options{CombinedAutomata: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	f := newFires()
	err = balanceMethods(db.NewClass("account")).
		Trigger("A(): perpetual after deposit ==> act", f.action("A")).
		Trigger("B(): perpetual every 2 (after withdraw) ==> act", f.action("B")).
		Register()
	if err != nil {
		t.Fatal(err)
	}
	var acct ode.OID
	db.Transact(func(tx *ode.Tx) error {
		acct, _ = tx.NewObject("account", nil)
		tx.Activate(acct, "A")
		return tx.Activate(acct, "B")
	})
	db.Transact(func(tx *ode.Tx) error {
		tx.Call(acct, "deposit", ode.Int(1))
		tx.Call(acct, "withdraw", ode.Int(1))
		tx.Call(acct, "withdraw", ode.Int(1))
		return nil
	})
	if f.count("A") != 1 || f.count("B") != 1 {
		t.Fatalf("A=%d B=%d", f.count("A"), f.count("B"))
	}
}

func TestBuilderMethodModesAndFuncs(t *testing.T) {
	db := openDB(t)
	f := newFires()
	err := db.NewClass("gauge").
		Field("level", ode.KindFloat, ode.Float(0)).
		Method("calibrate", ode.ModeUpdate, func(ctx *ode.MethodCtx) (ode.Value, error) {
			return ode.Null(), ctx.Set("level", ctx.Arg("to"))
		}, ode.P("to", ode.KindFloat)).
		Read("level", func(ctx *ode.MethodCtx) (ode.Value, error) {
			return ctx.Get("level")
		}).
		Func("limit", func([]ode.Value) (ode.Value, error) { return ode.Float(10), nil }).
		Trigger("High(): perpetual after calibrate(v) && v > limit() ==> act", f.action("High")).
		Register()
	if err != nil {
		t.Fatal(err)
	}
	var g ode.OID
	db.Transact(func(tx *ode.Tx) error {
		g, _ = tx.NewObject("gauge", nil)
		return tx.Activate(g, "High")
	})
	db.Transact(func(tx *ode.Tx) error {
		tx.Call(g, "calibrate", ode.Float(5))  // below limit
		tx.Call(g, "calibrate", ode.Float(15)) // above
		return nil
	})
	if f.count("High") != 1 {
		t.Fatalf("High fired %d times", f.count("High"))
	}
	// Int→float coercion on call arguments.
	if err := db.Transact(func(tx *ode.Tx) error {
		_, err := tx.Call(g, "calibrate", ode.Int(3))
		return err
	}); err != nil {
		t.Fatalf("int→float coercion: %v", err)
	}
}

func TestQueryHistoryRootErrors(t *testing.T) {
	db := openDB(t) // recording off
	err := balanceMethods(db.NewClass("account")).Register()
	if err != nil {
		t.Fatal(err)
	}
	var acct ode.OID
	db.Transact(func(tx *ode.Tx) error {
		acct, _ = tx.NewObject("account", nil)
		return nil
	})
	_, err = db.QueryHistory(acct, "after deposit")
	if err == nil || !strings.Contains(err.Error(), "RecordHistories") {
		t.Fatalf("query without recording: %v", err)
	}
}

// TestExplainAndFlightThroughRootAPI: the PR 6 observability surfaces
// — firing provenance and the always-on flight recorder — through the
// public facade, including the Options knobs.
func TestExplainAndFlightThroughRootAPI(t *testing.T) {
	db, err := ode.Open(ode.Options{FlightBuffer: 128, ProvenanceDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	f := newFires()
	err = balanceMethods(db.NewClass("account")).
		Trigger("Audit(): prior(after deposit, after withdraw) ==> act", f.action("Audit")).
		Register()
	if err != nil {
		t.Fatal(err)
	}
	var acct ode.OID
	db.Transact(func(tx *ode.Tx) error {
		acct, _ = tx.NewObject("account", nil)
		return tx.Activate(acct, "Audit")
	})
	if err := db.Transact(func(tx *ode.Tx) error {
		if _, err := tx.Call(acct, "deposit", ode.Int(50)); err != nil {
			return err
		}
		_, err := tx.Call(acct, "withdraw", ode.Int(20))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if f.count("Audit") != 1 {
		t.Fatalf("fires = %d", f.count("Audit"))
	}

	ex, err := db.Explain("Audit", acct)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Fired || !ex.Complete || len(ex.Steps) != 2 {
		t.Fatalf("explanation %+v", ex)
	}
	if ex.Steps[0].Kind != "after deposit" || !ex.Steps[1].Accepted {
		t.Fatalf("chain %+v", ex.Steps)
	}

	events := db.FlightEvents(0)
	if len(events) == 0 {
		t.Fatal("flight recorder empty")
	}
	var sawFire bool
	for _, ev := range events {
		if ev.Stage == ode.StageFire && ev.Trigger == "Audit" {
			sawFire = true
		}
	}
	if !sawFire {
		t.Fatalf("no fire event among %d flight events", len(events))
	}
	if s := db.Stats(); s.FlightEvents == 0 || s.ProvenanceSteps == 0 {
		t.Fatalf("stats missing obs counters: %+v", s)
	}
}
