// Benchmarks backing the experiment suite in EXPERIMENTS.md. Each
// experiment id (E1..E9) of DESIGN.md §5 has a corresponding bench
// here; cmd/odebench prints the same measurements as tables.
package ode_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"ode"
	"ode/internal/algebra"
	"ode/internal/compile"
	"ode/internal/fa"
	"ode/internal/workload"
)

// E1: cost of recognizing one posted event with the compiled automaton.
func BenchmarkDetectionAutomaton(b *testing.B) {
	paper := workload.Paper()
	h := workload.RandomHistory(rand.New(rand.NewSource(1)), workload.NumPaperSymbols, 4096)
	for i, e := range paper.Exprs {
		d := compile.Compile(e, workload.NumPaperSymbols)
		b.Run(paper.Names[i], func(b *testing.B) {
			det := compile.NewDetector(d)
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				det.Post(h[n%len(h)])
			}
		})
	}
}

// E1 baseline: re-evaluating the §4 denotational semantics over the
// whole history on every posting, at two fixed history lengths.
func BenchmarkDetectionNaive(b *testing.B) {
	paper := workload.Paper()
	rng := rand.New(rand.NewSource(1))
	for _, histLen := range []int{100, 1000} {
		h := workload.RandomHistory(rng, workload.NumPaperSymbols, histLen)
		for i, e := range paper.Exprs {
			b.Run(fmt.Sprintf("%s/hist%d", paper.Names[i], histLen), func(b *testing.B) {
				b.ReportAllocs()
				for n := 0; n < b.N; n++ {
					algebra.Occurs(e, h)
				}
			})
		}
	}
}

// E3: full compilation cost per paper trigger (resolution excluded;
// algebra → minimized DFA).
func BenchmarkCompilePaperTriggers(b *testing.B) {
	paper := workload.Paper()
	for i, e := range paper.Exprs {
		b.Run(paper.Names[i], func(b *testing.B) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				compile.Compile(e, workload.NumPaperSymbols)
			}
		})
	}
}

// E4: the §5 mask-disjointness rewrite at k overlapping masks.
func BenchmarkMaskRewrite(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("masks%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				if _, err := workload.RunE4(k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E5: the §6 pair construction.
func BenchmarkPairConstruction(b *testing.B) {
	paper := workload.Paper()
	dfas := make([]*fa.DFA, len(paper.Exprs))
	for i, e := range paper.Exprs {
		dfas[i] = compile.Compile(e, workload.NumPaperSymbols)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		compile.PairConstruction(dfas[n%len(dfas)], 7, 8)
	}
}

// E8: stepping nine separate trigger automata per event versus one
// combined product automaton (footnote 5).
func BenchmarkPerTriggerVsCombined(b *testing.B) {
	paper := workload.Paper()
	dfas := make([]*fa.DFA, len(paper.Exprs))
	for i, e := range paper.Exprs {
		dfas[i] = compile.Compile(e, workload.NumPaperSymbols)
	}
	h := workload.RandomHistory(rand.New(rand.NewSource(2)), workload.NumPaperSymbols, 4096)

	b.Run("separate", func(b *testing.B) {
		dets := make([]*compile.Detector, len(dfas))
		for i, d := range dfas {
			dets[i] = compile.NewDetector(d)
		}
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			sym := h[n%len(h)]
			for _, det := range dets {
				det.Post(sym)
			}
		}
	})
	b.Run("combined", func(b *testing.B) {
		comb := compile.Combine(dfas)
		state := comb.Start
		var sink uint64
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			var fires uint64
			state, fires = comb.Post(state, h[n%len(h)])
			sink |= fires
		}
		_ = sink
	})
}

// End-to-end engine throughput: one method call on an object with
// increasing numbers of active triggers (mask evaluation + automaton
// stepping + transaction machinery included).
func BenchmarkEngineMethodCall(b *testing.B) {
	for _, triggers := range []int{0, 1, 4, 8} {
		b.Run(fmt.Sprintf("triggers%d", triggers), func(b *testing.B) {
			db, err := ode.Open(ode.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			cb := db.NewClass("account").
				Field("balance", ode.KindInt, ode.Int(0)).
				Update("deposit", func(ctx *ode.MethodCtx) (ode.Value, error) {
					v, _ := ctx.Get("balance")
					return ode.Null(), ctx.Set("balance", ode.Int(v.AsInt()+ctx.Arg("n").AsInt()))
				}, ode.P("n", ode.KindInt))
			names := make([]string, triggers)
			for i := 0; i < triggers; i++ {
				names[i] = fmt.Sprintf("T%d", i)
				cb = cb.Trigger(fmt.Sprintf(
					"T%d(): perpetual relative(after deposit(n) && n > %d, after deposit) ==> act", i, i*1000),
					func(*ode.ActionCtx) error { return nil })
			}
			if err := cb.Register(); err != nil {
				b.Fatal(err)
			}
			var acct ode.OID
			if err := db.Transact(func(tx *ode.Tx) error {
				acct, err = tx.NewObject("account", nil)
				if err != nil {
					return err
				}
				for _, nm := range names {
					if err := tx.Activate(acct, nm); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				b.Fatal(err)
			}

			tx := db.Begin()
			defer tx.Abort()
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				if _, err := tx.Call(acct, "deposit", ode.Int(1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E12: the posting hot path — compiled mask programs, per-kind
// dispatch tables and dense trigger slots versus the AST-interpreter
// baseline (Options.InterpretedMasks). "nonfiring" is the PR's target
// case: a masked happening whose predicate rejects, i.e. pure
// monitoring overhead on every method call.
func BenchmarkEngineHotPath(b *testing.B) {
	for _, scenario := range []struct {
		name    string
		trigger string
	}{
		{"nonfiring", "Big(): perpetual after deposit(n) && n > 1000000 ==> act"},
		{"firing", "Any(): perpetual after deposit(n) && n >= 0 ==> act"},
	} {
		for _, interpreted := range []bool{false, true} {
			mode := "compiled"
			if interpreted {
				mode = "interpreted"
			}
			b.Run(fmt.Sprintf("%s/%s", scenario.name, mode), func(b *testing.B) {
				db, err := ode.Open(ode.Options{InterpretedMasks: interpreted})
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()
				err = db.NewClass("account").
					Field("balance", ode.KindInt, ode.Int(0)).
					Update("deposit", func(ctx *ode.MethodCtx) (ode.Value, error) {
						v, _ := ctx.Get("balance")
						return ode.Null(), ctx.Set("balance", ode.Int(v.AsInt()+ctx.Arg("n").AsInt()))
					}, ode.P("n", ode.KindInt)).
					Trigger(scenario.trigger, func(*ode.ActionCtx) error { return nil }).
					Register()
				if err != nil {
					b.Fatal(err)
				}
				var acct ode.OID
				if err := db.Transact(func(tx *ode.Tx) error {
					name := "Big"
					if scenario.name == "firing" {
						name = "Any"
					}
					var err error
					if acct, err = tx.NewObject("account", nil); err != nil {
						return err
					}
					return tx.Activate(acct, name)
				}); err != nil {
					b.Fatal(err)
				}
				tx := db.Begin()
				defer tx.Abort()
				b.ReportAllocs()
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					if _, err := tx.Call(acct, "deposit", ode.Int(1)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// E11: concurrent posting throughput over disjoint object partitions.
// Each goroutine owns its own objects, so the sharded lock manager and
// striped store should let throughput scale with goroutines on a
// multi-core machine (ops are independent end to end). GOMAXPROCS is
// pinned to the goroutine count so "goroutines1" is a true serial
// baseline.
func BenchmarkEngineParallelPosting(b *testing.B) {
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("goroutines%d", g), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(g)
			defer runtime.GOMAXPROCS(prev)

			db, err := ode.Open(ode.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			err = db.NewClass("account").
				Field("balance", ode.KindInt, ode.Int(0)).
				Update("deposit", func(ctx *ode.MethodCtx) (ode.Value, error) {
					v, _ := ctx.Get("balance")
					return ode.Null(), ctx.Set("balance", ode.Int(v.AsInt()+ctx.Arg("n").AsInt()))
				}, ode.P("n", ode.KindInt)).
				Trigger("Big(): perpetual relative(after deposit(n) && n > 100, after deposit) ==> act",
					func(*ode.ActionCtx) error { return nil }).
				Register()
			if err != nil {
				b.Fatal(err)
			}

			// One disjoint partition of objects per worker; workers claim
			// partitions with an atomic counter.
			const perWorker = 8
			parts := make([][]ode.OID, g)
			if err := db.Transact(func(tx *ode.Tx) error {
				for w := range parts {
					parts[w] = make([]ode.OID, perWorker)
					for i := range parts[w] {
						oid, err := tx.NewObject("account", nil)
						if err != nil {
							return err
						}
						if err := tx.Activate(oid, "Big"); err != nil {
							return err
						}
						parts[w][i] = oid
					}
				}
				return nil
			}); err != nil {
				b.Fatal(err)
			}

			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := int(next.Add(1)-1) % len(parts)
				part := parts[w]
				tx := db.Begin()
				defer tx.Abort()
				i := 0
				for pb.Next() {
					if _, err := tx.Call(part[i%len(part)], "deposit", ode.Int(int64(i%200))); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
		})
	}
}

// Transaction lifecycle cost: begin + one call + commit-fixpoint +
// commit + after-tcommit system transaction.
func BenchmarkEngineTransaction(b *testing.B) {
	db, err := ode.Open(ode.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	err = db.NewClass("account").
		Field("balance", ode.KindInt, ode.Int(0)).
		Update("deposit", func(ctx *ode.MethodCtx) (ode.Value, error) {
			v, _ := ctx.Get("balance")
			return ode.Null(), ctx.Set("balance", ode.Int(v.AsInt()+1))
		}).
		Trigger("Dep(): perpetual fa(after deposit, after tcommit, after tbegin) ==> act",
			func(*ode.ActionCtx) error { return nil }).
		Register()
	if err != nil {
		b.Fatal(err)
	}
	var acct ode.OID
	db.Transact(func(tx *ode.Tx) error {
		acct, _ = tx.NewObject("account", nil)
		return tx.Activate(acct, "Dep")
	})
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if err := db.Transact(func(tx *ode.Tx) error {
			_, err := tx.Call(acct, "deposit")
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// E7: timer delivery throughput on the virtual clock.
func BenchmarkTimerDelivery(b *testing.B) {
	db, err := ode.Open(ode.Options{Start: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	err = db.NewClass("mon").
		Field("x", ode.KindInt, ode.Int(0)).
		Update("tick", func(ctx *ode.MethodCtx) (ode.Value, error) { return ode.Null(), nil }).
		Trigger("Every(): perpetual every time(M=1) ==> act",
			func(*ode.ActionCtx) error { return nil }).
		Register()
	if err != nil {
		b.Fatal(err)
	}
	var oid ode.OID
	db.Transact(func(tx *ode.Tx) error {
		oid, _ = tx.NewObject("mon", nil)
		return tx.Activate(oid, "Every")
	})
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		db.Clock().Advance(time.Minute) // exactly one delivery
	}
	if errs := db.Engine().TimerErrors(); len(errs) > 0 {
		b.Fatal(errs[0])
	}
}

// Footnote-5 monitoring end to end: the same class and workload with
// per-trigger automata versus one combined product automaton.
func BenchmarkEngineCombinedMonitoring(b *testing.B) {
	for _, combined := range []bool{false, true} {
		name := "per-trigger"
		if combined {
			name = "combined"
		}
		b.Run(name, func(b *testing.B) {
			db, err := ode.Open(ode.Options{CombinedAutomata: combined})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			cb := db.NewClass("acct").
				Field("balance", ode.KindInt, ode.Int(0)).
				Update("deposit", func(ctx *ode.MethodCtx) (ode.Value, error) {
					return ode.Null(), nil
				}, ode.P("n", ode.KindInt))
			for i := 0; i < 8; i++ {
				cb = cb.Trigger(fmt.Sprintf(
					"T%d(): perpetual relative(after deposit(n) && n > %d, after deposit) ==> act", i, i),
					func(*ode.ActionCtx) error { return nil })
			}
			if err := cb.Register(); err != nil {
				b.Fatal(err)
			}
			var oid ode.OID
			db.Transact(func(tx *ode.Tx) error {
				oid, _ = tx.NewObject("acct", nil)
				for i := 0; i < 8; i++ {
					if err := tx.Activate(oid, fmt.Sprintf("T%d", i)); err != nil {
						return err
					}
				}
				return nil
			})
			tx := db.Begin()
			defer tx.Abort()
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				if _, err := tx.Call(oid, "deposit", ode.Int(int64(n%16))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Observability cost: the same posting hot path with tracing disabled
// (the default), with tracing into a ring buffer, and the disabled
// path's allocation guarantee. Per-trigger metrics are always on, so
// "disabled" here is the production configuration.
func BenchmarkEngineTracing(b *testing.B) {
	open := func(b *testing.B) (*ode.Database, ode.OID) {
		db, err := ode.Open(ode.Options{})
		if err != nil {
			b.Fatal(err)
		}
		err = db.NewClass("account").
			Field("balance", ode.KindInt, ode.Int(0)).
			Update("deposit", func(ctx *ode.MethodCtx) (ode.Value, error) {
				v, _ := ctx.Get("balance")
				return ode.Null(), ctx.Set("balance", ode.Int(v.AsInt()+ctx.Arg("n").AsInt()))
			}, ode.P("n", ode.KindInt)).
			Trigger("Big(): perpetual relative(after deposit(n) && n > 100, after deposit) ==> act",
				func(*ode.ActionCtx) error { return nil }).
			Register()
		if err != nil {
			b.Fatal(err)
		}
		var acct ode.OID
		if err := db.Transact(func(tx *ode.Tx) error {
			var err error
			if acct, err = tx.NewObject("account", nil); err != nil {
				return err
			}
			return tx.Activate(acct, "Big")
		}); err != nil {
			b.Fatal(err)
		}
		return db, acct
	}

	b.Run("disabled", func(b *testing.B) {
		db, acct := open(b)
		defer db.Close()
		tx := db.Begin()
		defer tx.Abort()
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			if _, err := tx.Call(acct, "deposit", ode.Int(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		db, acct := open(b)
		defer db.Close()
		db.EnableTracing(4096)
		tx := db.Begin()
		defer tx.Abort()
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			if _, err := tx.Call(acct, "deposit", ode.Int(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
