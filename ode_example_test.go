package ode_test

import (
	"fmt"
	"time"

	"ode"
)

// Example demonstrates the minimal flow: a class, a composite trigger
// in the paper's syntax, and a transaction that fires it.
func Example() {
	db, _ := ode.Open(ode.Options{})
	defer db.Close()

	_ = db.NewClass("account").
		Field("balance", ode.KindInt, ode.Int(0)).
		Update("withdraw", func(ctx *ode.MethodCtx) (ode.Value, error) {
			b, _ := ctx.Get("balance")
			return ode.Null(), ctx.Set("balance", ode.Int(b.AsInt()-ctx.Arg("amount").AsInt()))
		}, ode.P("amount", ode.KindInt)).
		Trigger("Large(): perpetual after withdraw(a) && a > 1000 ==> report",
			func(ctx *ode.ActionCtx) error {
				fmt.Println("large withdrawal detected")
				return nil
			}).
		Register()

	var acct ode.OID
	_ = db.Transact(func(tx *ode.Tx) error {
		acct, _ = tx.NewObject("account", map[string]ode.Value{"balance": ode.Int(5000)})
		return tx.Activate(acct, "Large")
	})
	_ = db.Transact(func(tx *ode.Tx) error {
		tx.Call(acct, "withdraw", ode.Int(100))  // below the mask
		tx.Call(acct, "withdraw", ode.Int(2000)) // fires
		return nil
	})
	// Output: large withdrawal detected
}

// ExampleDatabase_Transact shows tabort: a trigger action aborting the
// posting transaction, rolling back everything it did.
func ExampleDatabase_Transact() {
	db, _ := ode.Open(ode.Options{})
	defer db.Close()

	_ = db.NewClass("vault").
		Field("gold", ode.KindInt, ode.Int(100)).
		Update("take", func(ctx *ode.MethodCtx) (ode.Value, error) {
			g, _ := ctx.Get("gold")
			return ode.Null(), ctx.Set("gold", ode.Int(g.AsInt()-ctx.Arg("n").AsInt()))
		}, ode.P("n", ode.KindInt)).
		Trigger("Guard(): perpetual before take(n) && n > 50 ==> tabort", nil).
		Register()

	var vault ode.OID
	_ = db.Transact(func(tx *ode.Tx) error {
		vault, _ = tx.NewObject("vault", nil)
		return tx.Activate(vault, "Guard")
	})
	err := db.Transact(func(tx *ode.Tx) error {
		_, err := tx.Call(vault, "take", ode.Int(80))
		return err
	})
	fmt.Println("aborted:", err == ode.ErrTabort)

	var gold ode.Value
	_ = db.Transact(func(tx *ode.Tx) error {
		var err error
		gold, err = tx.Get(vault, "gold")
		return err
	})
	fmt.Println("gold:", gold)
	// Output:
	// aborted: true
	// gold: 100
}

// ExampleDatabase_Clock shows a time event on the virtual clock.
func ExampleDatabase_Clock() {
	db, _ := ode.Open(ode.Options{Start: time.Date(2026, 7, 6, 8, 0, 0, 0, time.UTC)})
	defer db.Close()

	_ = db.NewClass("office").
		Field("open", ode.KindBool, ode.Bool(true)).
		Update("close", func(ctx *ode.MethodCtx) (ode.Value, error) {
			return ode.Null(), ctx.Set("open", ode.Bool(false))
		}).
		Trigger("EndOfDay(): perpetual at time(HR=17) ==> close()", nil).
		Register()

	var office ode.OID
	_ = db.Transact(func(tx *ode.Tx) error {
		office, _ = tx.NewObject("office", nil)
		return tx.Activate(office, "EndOfDay")
	})

	db.Clock().Advance(10 * time.Hour) // past 17:00
	var open ode.Value
	_ = db.Transact(func(tx *ode.Tx) error {
		var err error
		open, err = tx.Get(office, "open")
		return err
	})
	fmt.Println("open after 17:00:", open)
	// Output: open after 17:00: false
}

// ExampleCouplingImmediateDeferred shows a §7 coupling combinator
// producing a plain event expression.
func ExampleCouplingImmediateDeferred() {
	expr := ode.CouplingImmediateDeferred("after withdraw(a) && a > 100", "balance < 0")
	fmt.Println(expr)
	// Output: fa((after withdraw(a) && a > 100) && balance < 0, before tcomplete, after tbegin)
}

// ExampleCompileEvent inspects the §5 compilation pipeline without a
// database.
func ExampleCompileEvent() {
	cls := &ode.Class{
		Name: "account",
		Methods: []ode.Method{
			{Name: "deposit", Mode: ode.ModeUpdate},
			{Name: "withdraw", Mode: ode.ModeUpdate},
		},
	}
	auto, _ := ode.CompileEvent(cls, "after deposit; after withdraw", nil)
	fmt.Printf("states=%d per-object=%dB\n", auto.States, auto.PerObjectBytes)
	// Output: states=3 per-object=8B
}

// ExampleDatabase_QueryHistory evaluates an event expression over a
// recorded history (offline "history expressions", the paper's §9).
func ExampleDatabase_QueryHistory() {
	db, _ := ode.Open(ode.Options{RecordHistories: -1})
	defer db.Close()

	_ = db.NewClass("acct").
		Field("n", ode.KindInt, ode.Int(0)).
		Update("deposit", func(ctx *ode.MethodCtx) (ode.Value, error) { return ode.Null(), nil }).
		Update("withdraw", func(ctx *ode.MethodCtx) (ode.Value, error) { return ode.Null(), nil }).
		Register()

	var acct ode.OID
	_ = db.Transact(func(tx *ode.Tx) error {
		acct, _ = tx.NewObject("acct", nil)
		return nil
	})
	_ = db.Transact(func(tx *ode.Tx) error {
		tx.Call(acct, "deposit")
		tx.Call(acct, "withdraw")
		return nil
	})

	points, _ := db.QueryHistory(acct, "relative(after deposit, after withdraw)")
	fmt.Println("occurrences:", len(points))
	// Output: occurrences: 1
}
